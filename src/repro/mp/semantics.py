"""Operational semantics of MP protocols.

This module implements the two primitives every search strategy builds on:

* :func:`enabled_executions` — compute all pairs ``(t, X)`` such that
  transition ``t`` is enabled in the given state for message set ``X``
  (MP-Basset's "enabled set of messages" computation, Section IV-A);
* :func:`apply_execution` — compute the successor state ``s'`` of
  ``s --t(X)--> s'``.

Enabled-set computation is the price paid for quorum transitions: for an
exact quorum of size ``q`` the candidate message sets are the size-``q``
sender combinations of the pending messages.  The enumeration below prunes
by transition (message type, effective sender set, quorum peers) before
forming combinations, which keeps the cost manageable in practice.

:class:`SuccessorEngine` layers state interning plus enabled-set and
successor caches over these primitives; all search strategies go through it
so that revisiting a state along a different interleaving costs a couple of
dictionary lookups instead of a full semantics recomputation.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from .channel import Network
from .errors import TransitionExecutionError
from .message import Message
from .protocol import Protocol
from .state import GlobalState, StateInterner
from .transition import ActionContext, Execution, QuorumKind, TransitionSpec


def _candidate_messages(state: GlobalState, transition: TransitionSpec) -> Tuple[Message, ...]:
    """Pending messages this transition could consume, in deterministic order."""
    pending = state.network.pending_for(transition.process_id, mtype=transition.message_type)
    senders = transition.effective_senders()
    if senders is not None:
        pending = tuple(message for message in pending if message.sender in senders)
    return tuple(sorted(pending, key=Message.sort_key))


def _single_message_executions(
    state: GlobalState, transition: TransitionSpec, candidates: Tuple[Message, ...]
) -> List[Execution]:
    local = state.local(transition.process_id)
    executions = []
    for message in candidates:
        messages = (message,)
        if transition.guard(local, messages):
            executions.append(Execution(transition, messages))
    return executions


def _exact_quorum_executions(
    state: GlobalState, transition: TransitionSpec, candidates: Tuple[Message, ...]
) -> List[Execution]:
    local = state.local(transition.process_id)
    size = transition.quorum.size
    executions: List[Execution] = []

    if transition.quorum.distinct_senders:
        by_sender: Dict[str, List[Message]] = {}
        for message in candidates:
            by_sender.setdefault(message.sender, []).append(message)
        available = sorted(by_sender)
        if len(available) < size:
            return executions
        if transition.quorum_peers is not None:
            required = sorted(transition.quorum_peers)
            if any(sender not in by_sender for sender in required):
                return executions
            sender_combos: Iterable[Tuple[str, ...]] = [tuple(required)]
        else:
            sender_combos = itertools.combinations(available, size)
        for combo in sender_combos:
            choices_per_sender = [by_sender[sender] for sender in combo]
            for choice in itertools.product(*choices_per_sender):
                messages = tuple(sorted(choice, key=Message.sort_key))
                if transition.guard(local, messages):
                    executions.append(Execution(transition, messages))
    else:
        seen = set()
        for combo in itertools.combinations(range(len(candidates)), size):
            messages = tuple(sorted((candidates[i] for i in combo), key=Message.sort_key))
            if messages in seen:
                continue
            seen.add(messages)
            if transition.guard(local, messages):
                executions.append(Execution(transition, messages))
    return executions


def enabled_executions_for(
    state: GlobalState, transition: TransitionSpec
) -> Tuple[Execution, ...]:
    """Return all enabled executions of a single transition in ``state``."""
    candidates = _candidate_messages(state, transition)
    if not candidates:
        return ()
    if transition.quorum.kind is QuorumKind.SINGLE:
        executions = _single_message_executions(state, transition, candidates)
    else:
        if len(candidates) < transition.quorum.size:
            return ()
        executions = _exact_quorum_executions(state, transition, candidates)
    return tuple(executions)


def enabled_executions(
    state: GlobalState,
    protocol: Protocol,
    transitions: Optional[Iterable[TransitionSpec]] = None,
) -> Tuple[Execution, ...]:
    """Return all enabled executions in ``state``.

    Args:
        state: The global state to inspect.
        protocol: The protocol (supplies the transition set by default).
        transitions: Optional subset of transitions to restrict to; used by
            the partial-order reduction to expand stubborn sets lazily.
    """
    specs = protocol.transitions if transitions is None else tuple(transitions)
    result: List[Execution] = []
    for transition in specs:
        result.extend(enabled_executions_for(state, transition))
    return tuple(result)


def is_enabled(state: GlobalState, transition: TransitionSpec) -> bool:
    """True if ``transition`` has at least one enabled execution in ``state``."""
    return bool(enabled_executions_for(state, transition))


def apply_execution(state: GlobalState, execution: Execution) -> GlobalState:
    """Compute the successor state of ``state`` under ``execution``.

    The consumed messages are removed from the network, the executing
    process's local state is replaced by the action's return value, and the
    action's queued sends are added to the network (Section II-A, items
    (1)-(3) of the transition relation definition).
    """
    transition = execution.transition
    pid = transition.process_id
    local = state.local(pid)
    context = ActionContext(
        process_id=pid,
        spec_view=state.locals_dict(),
        spec_reads=transition.annotation.spec_reads,
    )
    new_local = transition.action(local, execution.messages, context)
    if new_local is None:
        new_local = local
    try:
        hash(new_local)
    except TypeError as exc:
        raise TransitionExecutionError(
            f"transition {transition.name} produced an unhashable local state"
        ) from exc
    network = state.network.remove_all(execution.messages).add_all(context.outbox)
    return state.with_updates(pid, new_local, network)


class SuccessorEngine:
    """Interned-state successor engine shared by all search strategies.

    The engine wraps the two stateless primitives above with three layers
    that exploit how searches actually use them:

    * every state handed out is *interned* (:class:`StateInterner`), so a
      state reached along two interleavings is one object and all caches
      below are keyed by states whose hash is already computed and whose
      equality check starts with an identity test;
    * enabled-execution sets are cached per interned state — the quorum
      combination enumeration is the single most expensive step of the
      semantics, and stateless searches (DPOR in particular) recompute it
      for the same state along every interleaving that reaches it;
    * successor states are cached per ``(state, execution)`` edge, so
      re-executing a transition out of a revisited state is a lookup.

    The engine is purely an optimisation: it never changes which executions
    are enabled, their order, or the successor states, so search statistics
    (the paper's Table I/II state counts) are identical with and without it.

    The layers retain references to every state they see, which is exactly
    right for stateless search (states are revisited constantly and the
    reachable set bounds the tables) but would defeat the memory model of a
    stateful search over a fingerprint store.  :func:`for_search` picks the
    appropriate configuration; stateful searches get a pass-through engine
    and keep their per-frame memoisation instead.

    On instances whose reachable set is itself too large to hold, the two
    derived caches can be bounded with ``max_cache_entries``: both become
    LRU maps of at most that many states, evicting the least recently used
    entry on overflow.  The interner is intentionally left unbounded — it
    deduplicates rather than duplicates memory — while the enabled-set and
    successor tables (which hold tuples and edge maps per state) are the
    ones that grow without bound on long stateless runs.
    """

    __slots__ = (
        "protocol",
        "interner",
        "cache_successors",
        "cache_enabled_sets",
        "max_cache_entries",
        "_enabled_cache",
        "_successor_cache",
        "enabled_hits",
        "enabled_misses",
        "enabled_evictions",
        "successor_hits",
        "successor_misses",
        "successor_evictions",
    )

    def __init__(
        self,
        protocol: Protocol,
        interner: Optional[StateInterner] = None,
        cache_successors: bool = True,
        cache_enabled_sets: bool = True,
        intern_states: bool = True,
        max_cache_entries: Optional[int] = None,
    ) -> None:
        if max_cache_entries is not None and max_cache_entries < 1:
            raise ValueError("max_cache_entries must be at least 1 (or None)")
        self.protocol = protocol
        if interner is not None:
            self.interner = interner
        else:
            self.interner = StateInterner() if intern_states else None
        self.cache_successors = cache_successors
        self.cache_enabled_sets = cache_enabled_sets
        self.max_cache_entries = max_cache_entries
        self._enabled_cache: "OrderedDict[GlobalState, Tuple[Execution, ...]]" = OrderedDict()
        self._successor_cache: "OrderedDict[GlobalState, Dict[Execution, GlobalState]]" = OrderedDict()
        self.enabled_hits = 0
        self.enabled_misses = 0
        self.enabled_evictions = 0
        self.successor_hits = 0
        self.successor_misses = 0
        self.successor_evictions = 0

    @classmethod
    def for_search(
        cls,
        protocol: Protocol,
        stateful: bool,
        max_cache_entries: Optional[int] = None,
    ) -> "SuccessorEngine":
        """Engine configured for a search's memory model.

        Stateful searches expand each state exactly once and already retain
        states in their store (or deliberately only fingerprints), so every
        caching layer is disabled; stateless searches revisit states along
        every interleaving and get the full engine, optionally bounded by
        ``max_cache_entries`` (see the class docstring).
        """
        if stateful:
            return cls(
                protocol,
                cache_successors=False,
                cache_enabled_sets=False,
                intern_states=False,
            )
        return cls(protocol, max_cache_entries=max_cache_entries)

    def intern(self, state: GlobalState) -> GlobalState:
        """Return the canonical interned object for ``state``."""
        if self.interner is None:
            return state
        return self.interner.intern(state)

    def initial_state(self) -> GlobalState:
        """The protocol's initial state, interned."""
        return self.intern(self.protocol.initial_state())

    def enabled(self, state: GlobalState) -> Tuple[Execution, ...]:
        """All enabled executions in ``state``, cached per interned state."""
        if not self.cache_enabled_sets:
            return enabled_executions(state, self.protocol)
        cached = self._enabled_cache.get(state)
        if cached is not None:
            self.enabled_hits += 1
            if self.max_cache_entries is not None:
                self._enabled_cache.move_to_end(state)
            return cached
        computed = enabled_executions(state, self.protocol)
        self._enabled_cache[state] = computed
        self.enabled_misses += 1
        if (
            self.max_cache_entries is not None
            and len(self._enabled_cache) > self.max_cache_entries
        ):
            self._enabled_cache.popitem(last=False)
            self.enabled_evictions += 1
        return computed

    def successor(self, state: GlobalState, execution: Execution) -> GlobalState:
        """The interned successor of ``state`` under ``execution``."""
        if not self.cache_successors:
            return self.intern(apply_execution(state, execution))
        per_state = self._successor_cache.get(state)
        if per_state is None:
            per_state = {}
            self._successor_cache[state] = per_state
            if (
                self.max_cache_entries is not None
                and len(self._successor_cache) > self.max_cache_entries
            ):
                self._successor_cache.popitem(last=False)
                self.successor_evictions += 1
        elif self.max_cache_entries is not None:
            self._successor_cache.move_to_end(state)
        cached = per_state.get(execution)
        if cached is not None:
            self.successor_hits += 1
            return cached
        computed = self.intern(apply_execution(state, execution))
        per_state[execution] = computed
        self.successor_misses += 1
        return computed

    def cache_sizes(self) -> Dict[str, int]:
        """Sizes of the interner and both caches, for diagnostics and tests."""
        return {
            "interned_states": len(self.interner) if self.interner is not None else 0,
            "enabled_sets": len(self._enabled_cache),
            "successor_edges": sum(len(edges) for edges in self._successor_cache.values()),
        }

    def eviction_counts(self) -> Dict[str, int]:
        """LRU evictions per cache; all zero when ``max_cache_entries`` is None."""
        return {
            "enabled_sets": self.enabled_evictions,
            "successor_states": self.successor_evictions,
        }


def successors(
    state: GlobalState, protocol: Protocol
) -> Tuple[Tuple[Execution, GlobalState], ...]:
    """Return all ``(execution, successor state)`` pairs from ``state``."""
    return tuple(
        (execution, apply_execution(state, execution))
        for execution in enabled_executions(state, protocol)
    )


def state_graph_edges(
    protocol: Protocol,
    max_states: Optional[int] = None,
    engine: Optional[SuccessorEngine] = None,
) -> Tuple[frozenset, frozenset]:
    """Enumerate the full state graph of a protocol.

    Returns a pair ``(states, edges)`` where ``edges`` is a frozenset of
    ``(state, successor state)`` pairs — the relation Δ of the Kripke
    structure.  Used by the refinement validator (Theorem 2) and by tests;
    not intended for large instances.

    Args:
        protocol: The protocol to explore.
        max_states: Safety bound; exploration raises if exceeded.
        engine: Optional successor engine.  A caching engine shared across
            repeated enumerations of the same protocol (the refinement
            validator checks one protocol against several refinements) turns
            every enumeration after the first into cache lookups.

    Raises:
        RuntimeError: If ``max_states`` is exceeded.
    """
    if engine is not None and engine.protocol is not protocol:
        raise ValueError("successor engine was built for a different protocol")
    if engine is None:
        initial = protocol.initial_state()

        def expand(state: GlobalState) -> Iterable[Tuple[Execution, GlobalState]]:
            return successors(state, protocol)

    else:
        initial = engine.initial_state()

        def expand(state: GlobalState) -> Iterable[Tuple[Execution, GlobalState]]:
            return (
                (execution, engine.successor(state, execution))
                for execution in engine.enabled(state)
            )

    visited = {initial}
    edges = set()
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        for _, successor in expand(state):
            edges.add((state, successor))
            if successor not in visited:
                visited.add(successor)
                if max_states is not None and len(visited) > max_states:
                    raise RuntimeError(
                        f"state graph exceeds max_states={max_states} for {protocol.name}"
                    )
                frontier.append(successor)
    return frozenset(visited), frozenset(edges)
