"""Transitions of the MP modelling language.

A transition (Section II-A) is an atomic, process-local event that consumes
a set of messages, updates the local state of the executing process, and
sends zero or more messages.  A transition whose consumed set may contain
messages from more than one sender is a *quorum transition*; otherwise it is
a *single-message transition*.

Transitions carry an :class:`LporAnnotation`, the Python analogue of
MP-Basset's ``@LPORAnnotation`` (Table IV in the paper).  The annotation
statically describes what the transition may send and receive, and is the
sole input to the state-unconditional dependence relation used by the static
partial-order reduction.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, FrozenSet, Optional, Tuple

from .errors import QuorumSpecificationError, TransitionExecutionError
from .message import Message


class QuorumKind(enum.Enum):
    """The kind of message set a transition consumes."""

    #: The transition consumes exactly one message.
    SINGLE = "single"
    #: The transition consumes exactly ``size`` messages from distinct senders.
    EXACT = "exact"


@dataclass(frozen=True)
class QuorumSpec:
    """Describes how many messages a transition consumes.

    Attributes:
        kind: Single-message or exact-quorum.
        size: The quorum threshold ``q_t`` (1 for single-message transitions).
        distinct_senders: Whether the quorum must contain at most one message
            per sender (the common case for threshold-based protocols).
    """

    kind: QuorumKind
    size: int
    distinct_senders: bool = True

    def __post_init__(self) -> None:
        if self.size < 1:
            raise QuorumSpecificationError(f"quorum size must be positive, got {self.size}")
        if self.kind is QuorumKind.SINGLE and self.size != 1:
            raise QuorumSpecificationError("single-message transitions have quorum size 1")

    @property
    def is_quorum(self) -> bool:
        """True if the transition may consume messages from more than one sender."""
        return self.kind is QuorumKind.EXACT and self.size > 1

    @property
    def is_exact(self) -> bool:
        """True if the number of senders is fixed (Definition 2: exact quorum)."""
        return True  # both supported kinds fix the number of senders


def single_message() -> QuorumSpec:
    """Quorum specification of an ordinary single-message transition."""
    return QuorumSpec(QuorumKind.SINGLE, 1)


def exact_quorum(size: int) -> QuorumSpec:
    """Quorum specification of an exact quorum transition with threshold ``size``."""
    if size == 1:
        return single_message()
    return QuorumSpec(QuorumKind.EXACT, size)


def majority_of(population: int) -> int:
    """Return the majority threshold ``ceil((population + 1) / 2)`` used by Paxos."""
    return math.ceil((population + 1) / 2)


@dataclass(frozen=True)
class SendSpec:
    """Static description of a send a transition may perform.

    Attributes:
        mtype: Type of the sent message.
        recipients: Known recipient set, or ``None`` if unknown (any process).
        to_senders_only: True for reply transitions (Definition 4): the
            recipients are a subset of the senders of the consumed messages.
    """

    mtype: str
    recipients: Optional[FrozenSet[str]] = None
    to_senders_only: bool = False


@dataclass(frozen=True)
class LporAnnotation:
    """Static metadata guiding the partial-order reduction.

    This mirrors MP-Basset's ``@LPORAnnotation`` (Table IV): it records what
    a transition may send, who may send to it, whether it is a reply
    transition, its seed-selection priority, and whether it is visible with
    respect to the property under verification.

    Attributes:
        sends: The sends the transition may perform.
        possible_senders: Processes that may send messages consumed by this
            transition, or ``None`` when unknown (conservatively: anyone).
        is_reply: Whether this is a reply transition (Definition 4).
        priority: Seed-transition heuristic priority; larger values are
            preferred by the "opposite transaction" heuristic.
        visible: Whether executing the transition can change the truth value
            of the property under verification.
        spec_reads: Processes whose local state the transition reads for
            specification-only (ghost) purposes, cf. footnote 7 of the paper.
            Such reads make the transition dependent on every transition of
            the read process, keeping the reduction sound.
        starts_instance: The transition starts a new protocol instance
            (e.g. Paxos READ); used by the opposite-transaction heuristic.
        finishes_instance: The transition completes an ongoing instance
            (e.g. Paxos ACCEPT); used by the opposite-transaction heuristic.
    """

    sends: Tuple[SendSpec, ...] = ()
    possible_senders: Optional[FrozenSet[str]] = None
    is_reply: bool = False
    priority: int = 0
    visible: bool = False
    spec_reads: FrozenSet[str] = frozenset()
    starts_instance: bool = False
    finishes_instance: bool = False


class ActionContext:
    """Execution context handed to a transition action.

    The action reads the consumed messages and the current local state (both
    passed as arguments), queues outgoing messages via :meth:`send`, and
    returns the new local state.  The ``spec_view`` exposes other processes'
    local states for specification-only snapshots; protocol logic must not
    depend on it (the paper's footnote 7 warns about exactly this), and the
    transition must declare such reads in ``LporAnnotation.spec_reads``.
    """

    __slots__ = ("process_id", "_spec_view", "_outbox", "_spec_reads")

    def __init__(self, process_id: str, spec_view: Optional[dict] = None,
                 spec_reads: FrozenSet[str] = frozenset()) -> None:
        self.process_id = process_id
        self._spec_view = spec_view or {}
        self._outbox: list = []
        self._spec_reads = spec_reads

    def send(self, recipient: str, mtype: str, **fields: Any) -> None:
        """Queue a message from the executing process to ``recipient``."""
        self._outbox.append(Message.make(mtype, self.process_id, recipient, **fields))

    def send_message(self, message: Message) -> None:
        """Queue an already-built message; its sender must be the executing process."""
        if message.sender != self.process_id:
            raise TransitionExecutionError(
                f"process {self.process_id} cannot send on behalf of {message.sender}"
            )
        self._outbox.append(message)

    def spec_read(self, pid: str) -> Any:
        """Return another process's local state for specification purposes only.

        Raises:
            TransitionExecutionError: If ``pid`` was not declared in the
                transition's ``spec_reads`` annotation.
        """
        if pid not in self._spec_reads:
            raise TransitionExecutionError(
                f"spec_read of {pid!r} not declared in the transition annotation"
            )
        try:
            return self._spec_view[pid]
        except KeyError:
            raise TransitionExecutionError(f"unknown process in spec_read: {pid}") from None

    @property
    def outbox(self) -> Tuple[Message, ...]:
        """Messages queued so far, in send order."""
        return tuple(self._outbox)


#: Guard signature: ``guard(local_state, messages) -> bool``.
GuardFn = Callable[[Any, Tuple[Message, ...]], bool]
#: Action signature: ``action(local_state, messages, ctx) -> new_local_state``.
ActionFn = Callable[[Any, Tuple[Message, ...], ActionContext], Any]


def _always_true(_local_state: Any, _messages: Tuple[Message, ...]) -> bool:
    return True


@dataclass(frozen=True)
class TransitionSpec:
    """A guarded transition of one process.

    Attributes:
        name: Unique transition name within the protocol.  By MP convention
            the base name matches the consumed message type; refined
            (split) transitions append a suffix.
        process_id: Identifier of the executing process.
        message_type: Type of the messages the transition consumes.
        quorum: How many messages are consumed.
        guard: Predicate over ``(local state, consumed messages)``; the
            transition is enabled for a message set only if the guard holds.
        action: Function computing the new local state and queueing sends.
        quorum_peers: If set, the consumed messages' senders must be exactly
            this set (quorum-split, Definition 3) or, for single-message
            transitions, the single sender must be in this set (reply-split).
        annotation: Static metadata for partial-order reduction.
        refined_from: Name of the original transition if this spec was
            produced by a refinement strategy, else ``None``.
    """

    name: str
    process_id: str
    message_type: str
    quorum: QuorumSpec = field(default_factory=single_message)
    guard: GuardFn = _always_true
    action: ActionFn = None  # type: ignore[assignment]
    quorum_peers: Optional[FrozenSet[str]] = None
    annotation: LporAnnotation = field(default_factory=LporAnnotation)
    refined_from: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action is None:
            raise TransitionExecutionError(f"transition {self.name} has no action")
        if self.quorum_peers is not None:
            peers = frozenset(self.quorum_peers)
            object.__setattr__(self, "quorum_peers", peers)
            if self.quorum.kind is QuorumKind.EXACT and len(peers) != self.quorum.size:
                raise QuorumSpecificationError(
                    f"transition {self.name}: quorum_peers has {len(peers)} members "
                    f"but the quorum size is {self.quorum.size}"
                )

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_quorum_transition(self) -> bool:
        """True if the transition may consume messages from multiple senders."""
        return self.quorum.is_quorum

    @property
    def is_single_message(self) -> bool:
        """True if the transition consumes exactly one message."""
        return not self.quorum.is_quorum

    @property
    def is_refined(self) -> bool:
        """True if the transition was produced by a refinement strategy."""
        return self.refined_from is not None

    @property
    def base_name(self) -> str:
        """The unrefined transition name (itself if not refined)."""
        return self.refined_from if self.refined_from is not None else self.name

    def effective_senders(self) -> Optional[FrozenSet[str]]:
        """Return the set of processes that may send messages consumed here.

        ``None`` means unknown (any process).  The quorum-peer restriction of
        refined transitions takes precedence over the static annotation.
        """
        if self.quorum_peers is not None:
            return self.quorum_peers
        return self.annotation.possible_senders

    def with_annotation(self, **changes: Any) -> "TransitionSpec":
        """Return a copy with the annotation fields in ``changes`` replaced."""
        return replace(self, annotation=replace(self.annotation, **changes))

    def __repr__(self) -> str:
        peers = f", peers={sorted(self.quorum_peers)}" if self.quorum_peers else ""
        return (
            f"TransitionSpec({self.name!r}, process={self.process_id!r}, "
            f"consumes={self.message_type!r} x{self.quorum.size}{peers})"
        )

    def __hash__(self) -> int:
        # Specs are dictionary keys on every hot path (successor caches,
        # per-frame memoisation); the generated dataclass hash walks all
        # nine fields each call, so the value is computed once and cached.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((
                self.name, self.process_id, self.message_type, self.quorum,
                self.guard, self.action, self.quorum_peers, self.annotation,
                self.refined_from,
            ))
            object.__setattr__(self, "_cached_hash", cached)
        return cached


@dataclass(frozen=True)
class Execution:
    """A concrete enabled execution of a transition: the pair ``(t, X)``.

    The paper writes this as ``s --t(X)--> s'``: transition ``t`` executed
    with message set ``X``.
    """

    transition: TransitionSpec
    messages: Tuple[Message, ...]

    @property
    def senders(self) -> FrozenSet[str]:
        """The set ``senders(X)`` of processes that sent a consumed message."""
        return frozenset(message.sender for message in self.messages)

    @property
    def process_id(self) -> str:
        """The executing process."""
        return self.transition.process_id

    def describe(self) -> str:
        """Return a compact human-readable rendering of the execution."""
        consumed = ", ".join(message.describe() for message in self.messages)
        return f"{self.transition.name}@{self.transition.process_id} consuming [{consumed}]"

    def __hash__(self) -> int:
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.transition, self.messages))
            object.__setattr__(self, "_cached_hash", cached)
        return cached
