"""Declarative builder for MP protocols.

The builder keeps protocol modules readable: processes and transitions are
added one by one, driver messages are registered with :meth:`trigger`, and
:meth:`build` performs the consistency checks of :class:`Protocol`.

Example::

    builder = ProtocolBuilder("ping-pong")
    builder.add_process("ping", "pinger", PingState())
    builder.add_process("pong", "ponger", PongState())
    builder.add_transition(
        name="PING",
        process_id="pong",
        message_type="PING",
        action=reply_with_pong,
        annotation=LporAnnotation(sends=(SendSpec("PONG", to_senders_only=True),),
                                  is_reply=True),
    )
    builder.trigger("START", "ping")
    protocol = builder.build()
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set

from .errors import ProtocolDefinitionError
from .message import DRIVER, Message, driver_message
from .process import ProcessDecl
from .protocol import Protocol
from .transition import (
    ActionFn,
    GuardFn,
    LporAnnotation,
    QuorumSpec,
    TransitionSpec,
    single_message,
)


class ProtocolBuilder:
    """Incremental construction of a :class:`Protocol`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._processes: List[ProcessDecl] = []
        self._transitions: List[TransitionSpec] = []
        self._driver_messages: List[Message] = []
        self._metadata: Dict[str, object] = {}
        # Id sets kept alongside the lists so duplicate checks stay O(1)
        # while protocol generators add hundreds of refined transitions.
        self._pids: Set[str] = set()
        self._transition_names: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Processes
    # ------------------------------------------------------------------ #
    def add_process(self, pid: str, ptype: str, initial_state: Any) -> "ProtocolBuilder":
        """Declare a process instance."""
        if pid in self._pids:
            raise ProtocolDefinitionError(f"process {pid} already declared")
        self._pids.add(pid)
        self._processes.append(ProcessDecl(pid=pid, ptype=ptype, initial_state=initial_state))
        return self

    def process_ids(self, ptype: Optional[str] = None) -> tuple:
        """Return the ids of declared processes, optionally filtered by type."""
        return tuple(
            process.pid
            for process in self._processes
            if ptype is None or process.ptype == ptype
        )

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def add_transition(
        self,
        name: str,
        process_id: str,
        message_type: str,
        action: ActionFn,
        guard: Optional[GuardFn] = None,
        quorum: Optional[QuorumSpec] = None,
        quorum_peers: Optional[FrozenSet[str]] = None,
        annotation: Optional[LporAnnotation] = None,
        refined_from: Optional[str] = None,
    ) -> "ProtocolBuilder":
        """Declare a transition of ``process_id`` consuming ``message_type``."""
        if name in self._transition_names:
            raise ProtocolDefinitionError(f"transition {name} already declared")
        spec = TransitionSpec(
            name=name,
            process_id=process_id,
            message_type=message_type,
            quorum=quorum if quorum is not None else single_message(),
            guard=guard if guard is not None else (lambda _local, _messages: True),
            action=action,
            quorum_peers=quorum_peers,
            annotation=annotation if annotation is not None else LporAnnotation(),
            refined_from=refined_from,
        )
        self._transition_names.add(name)
        self._transitions.append(spec)
        return self

    def add_spec(self, spec: TransitionSpec) -> "ProtocolBuilder":
        """Add an already-built transition specification."""
        if spec.name in self._transition_names:
            raise ProtocolDefinitionError(f"transition {spec.name} already declared")
        self._transition_names.add(spec.name)
        self._transitions.append(spec)
        return self

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def trigger(self, mtype: str, recipient: str, **fields: Any) -> "ProtocolBuilder":
        """Register a driver ("fake") message injected into the initial state.

        The message type conventionally matches the name of the spontaneous
        transition it triggers, exactly as in MP-Basset drivers.
        """
        self._driver_messages.append(driver_message(mtype, recipient, **fields))
        return self

    # ------------------------------------------------------------------ #
    # Metadata and assembly
    # ------------------------------------------------------------------ #
    def set_metadata(self, **entries: object) -> "ProtocolBuilder":
        """Attach free-form metadata describing the protocol setting."""
        self._metadata.update(entries)
        return self

    def build(self) -> Protocol:
        """Validate and return the protocol.

        The returned :class:`Protocol` computes its shared ``pid -> position``
        index during validation; every global state derived from it reuses
        that single dictionary.
        """
        known = self._pids | {DRIVER}
        for transition in self._transitions:
            senders = transition.effective_senders()
            if senders is not None:
                unknown = set(senders) - known
                if unknown:
                    raise ProtocolDefinitionError(
                        f"transition {transition.name}: unknown possible senders {sorted(unknown)}"
                    )
        return Protocol(
            name=self.name,
            processes=tuple(self._processes),
            transitions=tuple(self._transitions),
            driver_messages=tuple(self._driver_messages),
            metadata=dict(self._metadata),
        )
