"""Global states of a message-passing protocol.

A global state (Section II-A) is a vector of the local state of every
process plus the contents of every channel.  Global states are immutable and
hashable, which makes stateful search, fingerprinting and the transition
refinement equivalence checks straightforward.

Because the model checker creates millions of states through functional
updates, construction is engineered around three invariants:

* the ``pid -> position`` index is shared: it is computed once per protocol
  and every derived state reuses the same dictionary object;
* hashing is incremental: the hash over the local-state vector is an XOR of
  position-tagged per-entry hashes, so replacing one local state combines
  the old accumulator with the delta of the changed entry instead of
  rehashing the whole tuple;
* states can be *interned* (:class:`StateInterner`), so identical states
  share one object and equality starts with an identity check.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .channel import Network
from .errors import MPError


#: ``pid tuple -> shared index`` table used when unpickling states, so all
#: states of one protocol restored in a process share a single index dict
#: (mirroring the shared-index invariant of freshly built states).
_UNPICKLE_INDEX_CACHE: Dict[Tuple[str, ...], Dict[str, int]] = {}


def _restore_state(pairs: Tuple[Tuple[str, Any], ...], network: Network) -> "GlobalState":
    """Rebuild a pickled :class:`GlobalState`.

    Only the local-state vector and the network cross the process boundary;
    the index is reattached from a per-process cache and both hashes are
    recomputed under the *receiving* interpreter's hash seed.  Fingerprints
    therefore agree between sender and receiver exactly when both share a
    hash seed — true for ``fork``-started workers and for ``spawn`` with
    ``PYTHONHASHSEED`` pinned; the parallel search relies on this.
    """
    pids = tuple(pid for pid, _ in pairs)
    index = _UNPICKLE_INDEX_CACHE.get(pids)
    if index is None:
        index = {pid: position for position, pid in enumerate(pids)}
        _UNPICKLE_INDEX_CACHE[pids] = index
    return GlobalState(pairs, network, index=index)


_MASK64 = (1 << 64) - 1


def combine_state_hash(locals_hash: int, network_hash: int) -> int:
    """Mix the locals accumulator and the network accumulator into one hash.

    A pure integer function (splitmix64-style finaliser over a weighted sum)
    rather than ``hash((locals_hash, network))``, so the packed fast-path
    engine (:mod:`repro.fastpath`) — which maintains both accumulators
    word-incrementally over interned ids — produces *bit-identical*
    fingerprints without ever materialising a state object.  The result is
    kept inside the signed 64-bit ``Py_hash_t`` range and never -1, so
    ``hash(state) == state.fingerprint()`` exactly.
    """
    z = (
        (locals_hash & _MASK64) * 0x9E3779B97F4A7C15
        + (network_hash & _MASK64) * 0xBF58476D1CE4E5B9
    ) & _MASK64
    z ^= z >> 30
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    if z >= 1 << 63:
        z -= 1 << 64
    return -2 if z == -1 else z


def _entry_hash(position: int, pid: str, local: Any) -> int:
    """Hash of one ``(position, pid, local state)`` entry of the vector.

    Tagging the position makes the XOR accumulator sensitive to entry order,
    so swapping the local states of two processes changes the hash.
    """
    return hash((position, pid, local))


def _locals_accumulator(pairs: Tuple[Tuple[str, Any], ...]) -> int:
    """XOR-combine the entry hashes of a full local-state vector."""
    accumulator = 0
    for position, (pid, local) in enumerate(pairs):
        accumulator ^= _entry_hash(position, pid, local)
    return accumulator


class GlobalState:
    """Immutable snapshot of all local states and the in-flight messages.

    Attributes:
        locals: Tuple of ``(process id, local state)`` pairs, in the fixed
            process order of the protocol.
        network: The multiset of in-flight messages.
    """

    __slots__ = ("_locals", "_network", "_index", "_lhash", "_hash")

    def __init__(
        self,
        locals_: Iterable[Tuple[str, Any]],
        network: Network,
        index: Optional[Mapping[str, int]] = None,
    ) -> None:
        pairs = tuple(locals_)
        if index is None:
            built: Dict[str, int] = {}
            for position, (pid, _) in enumerate(pairs):
                if pid in built:
                    raise MPError(f"duplicate process id in global state: {pid}")
                built[pid] = position
            index = built
        else:
            if len(index) != len(pairs):
                raise MPError(
                    f"process index covers {len(index)} processes, state has {len(pairs)}"
                )
            for position, (pid, _) in enumerate(pairs):
                if index.get(pid) != position:
                    raise MPError(
                        f"process index disagrees with state layout at {pid!r}"
                    )
        self._locals = pairs
        self._network = network
        self._index = index
        self._lhash = _locals_accumulator(pairs)
        self._hash = combine_state_hash(self._lhash, network._hash)

    @classmethod
    def _derive(
        cls,
        locals_: Tuple[Tuple[str, Any], ...],
        network: Network,
        index: Mapping[str, int],
        lhash: int,
    ) -> "GlobalState":
        """Fast construction path for functional updates.

        Trusts the caller's index and incrementally-maintained locals hash;
        only the cheap combination with the (cached) network hash is redone.
        """
        state = object.__new__(cls)
        state._locals = locals_
        state._network = network
        state._index = index
        state._lhash = lhash
        state._hash = combine_state_hash(lhash, network._hash)
        return state

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def locals(self) -> Tuple[Tuple[str, Any], ...]:
        """All ``(process id, local state)`` pairs in protocol order."""
        return self._locals

    @property
    def network(self) -> Network:
        """The multiset of in-flight messages."""
        return self._network

    @property
    def process_ids(self) -> Tuple[str, ...]:
        """Process identifiers in protocol order."""
        return tuple(pid for pid, _ in self._locals)

    def local(self, pid: str) -> Any:
        """Return the local state of process ``pid``.

        Raises:
            KeyError: If the process is unknown.
        """
        try:
            position = self._index[pid]
        except KeyError:
            raise KeyError(f"unknown process: {pid}") from None
        return self._locals[position][1]

    def locals_dict(self) -> Dict[str, Any]:
        """Return a fresh ``{process id: local state}`` dictionary."""
        return dict(self._locals)

    def fingerprint(self) -> int:
        """The cached state hash, exposed for fingerprint stores."""
        return self._hash

    # ------------------------------------------------------------------ #
    # Functional updates
    # ------------------------------------------------------------------ #
    def with_local(self, pid: str, local_state: Any) -> "GlobalState":
        """Return a copy of the state with the local state of ``pid`` replaced."""
        try:
            position = self._index[pid]
        except KeyError:
            raise KeyError(f"unknown process: {pid}") from None
        old_local = self._locals[position][1]
        if old_local == local_state:
            return self
        updated = list(self._locals)
        updated[position] = (pid, local_state)
        lhash = (
            self._lhash
            ^ _entry_hash(position, pid, old_local)
            ^ _entry_hash(position, pid, local_state)
        )
        return GlobalState._derive(tuple(updated), self._network, self._index, lhash)

    def with_network(self, network: Network) -> "GlobalState":
        """Return a copy of the state with the network replaced."""
        if network is self._network or network == self._network:
            return self
        return GlobalState._derive(self._locals, network, self._index, self._lhash)

    def with_updates(self, pid: str, local_state: Any, network: Network) -> "GlobalState":
        """Return a copy with both a new local state for ``pid`` and a new network."""
        try:
            position = self._index[pid]
        except KeyError:
            raise KeyError(f"unknown process: {pid}") from None
        old_local = self._locals[position][1]
        same_network = network is self._network or network == self._network
        if old_local == local_state:
            if same_network:
                return self
            return GlobalState._derive(self._locals, network, self._index, self._lhash)
        updated = list(self._locals)
        updated[position] = (pid, local_state)
        lhash = (
            self._lhash
            ^ _entry_hash(position, pid, old_local)
            ^ _entry_hash(position, pid, local_state)
        )
        target = self._network if same_network else network
        return GlobalState._derive(tuple(updated), target, self._index, lhash)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, GlobalState):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return self._locals == other._locals and self._network == other._network

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        """Compact pickling: ship only the locals vector and the network.

        The shared index and both cached hashes are process-local artifacts
        (hashes depend on the interpreter's hash seed) and are rebuilt on
        unpickling by :func:`_restore_state`.
        """
        return (_restore_state, (self._locals, self._network))

    def __repr__(self) -> str:
        parts = ", ".join(f"{pid}={local!r}" for pid, local in self._locals)
        return f"GlobalState({parts}; {self._network!r})"

    def describe(self) -> str:
        """Return a multi-line human-readable rendering, used in counterexamples."""
        lines = ["state:"]
        for pid, local in self._locals:
            lines.append(f"  {pid}: {local!r}")
        if self._network:
            lines.append("  in flight:")
            for message, count in self._network.items:
                suffix = f" x{count}" if count > 1 else ""
                lines.append(f"    {message.describe()}{suffix}")
        else:
            lines.append("  in flight: (none)")
        return "\n".join(lines)


class StateInterner:
    """Hash-consing table mapping each distinct global state to one object.

    Searches that revisit states along many interleavings (stateless DPOR in
    particular) funnel every successor through :meth:`intern`; afterwards
    equal states are the *same* object, dictionary lookups keyed on states
    hit the ``is`` fast path, and per-state caches never store duplicates.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: Dict[GlobalState, GlobalState] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, state: GlobalState) -> GlobalState:
        """Return the canonical object for ``state`` (registering it if new)."""
        canonical = self._table.get(state)
        if canonical is not None:
            self.hits += 1
            return canonical
        self._table[state] = state
        self.misses += 1
        return state

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, state: GlobalState) -> bool:
        return state in self._table
