"""Global states of a message-passing protocol.

A global state (Section II-A) is a vector of the local state of every
process plus the contents of every channel.  Global states are immutable and
hashable, which makes stateful search, fingerprinting and the transition
refinement equivalence checks straightforward.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from .channel import Network
from .errors import MPError


class GlobalState:
    """Immutable snapshot of all local states and the in-flight messages.

    Attributes:
        locals: Tuple of ``(process id, local state)`` pairs, in the fixed
            process order of the protocol.
        network: The multiset of in-flight messages.
    """

    __slots__ = ("_locals", "_network", "_index", "_hash")

    def __init__(self, locals_: Iterable[Tuple[str, Any]], network: Network) -> None:
        pairs = tuple(locals_)
        index: Dict[str, int] = {}
        for position, (pid, _) in enumerate(pairs):
            if pid in index:
                raise MPError(f"duplicate process id in global state: {pid}")
            index[pid] = position
        self._locals = pairs
        self._network = network
        self._index = index
        self._hash = hash((pairs, network))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def locals(self) -> Tuple[Tuple[str, Any], ...]:
        """All ``(process id, local state)`` pairs in protocol order."""
        return self._locals

    @property
    def network(self) -> Network:
        """The multiset of in-flight messages."""
        return self._network

    @property
    def process_ids(self) -> Tuple[str, ...]:
        """Process identifiers in protocol order."""
        return tuple(pid for pid, _ in self._locals)

    def local(self, pid: str) -> Any:
        """Return the local state of process ``pid``.

        Raises:
            KeyError: If the process is unknown.
        """
        try:
            position = self._index[pid]
        except KeyError:
            raise KeyError(f"unknown process: {pid}") from None
        return self._locals[position][1]

    def locals_dict(self) -> Dict[str, Any]:
        """Return a fresh ``{process id: local state}`` dictionary."""
        return dict(self._locals)

    # ------------------------------------------------------------------ #
    # Functional updates
    # ------------------------------------------------------------------ #
    def with_local(self, pid: str, local_state: Any) -> "GlobalState":
        """Return a copy of the state with the local state of ``pid`` replaced."""
        if pid not in self._index:
            raise KeyError(f"unknown process: {pid}")
        position = self._index[pid]
        if self._locals[position][1] == local_state:
            return self
        updated = list(self._locals)
        updated[position] = (pid, local_state)
        return GlobalState(updated, self._network)

    def with_network(self, network: Network) -> "GlobalState":
        """Return a copy of the state with the network replaced."""
        return GlobalState(self._locals, network)

    def with_updates(self, pid: str, local_state: Any, network: Network) -> "GlobalState":
        """Return a copy with both a new local state for ``pid`` and a new network."""
        if pid not in self._index:
            raise KeyError(f"unknown process: {pid}")
        position = self._index[pid]
        updated = list(self._locals)
        updated[position] = (pid, local_state)
        return GlobalState(updated, network)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GlobalState):
            return NotImplemented
        return self._locals == other._locals and self._network == other._network

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(f"{pid}={local!r}" for pid, local in self._locals)
        return f"GlobalState({parts}; {self._network!r})"

    def describe(self) -> str:
        """Return a multi-line human-readable rendering, used in counterexamples."""
        lines = ["state:"]
        for pid, local in self._locals:
            lines.append(f"  {pid}: {local!r}")
        if self._network:
            lines.append("  in flight:")
            for message, count in self._network.items:
                suffix = f" x{count}" if count > 1 else ""
                lines.append(f"    {message.describe()}{suffix}")
        else:
            lines.append("  in flight: (none)")
        return "\n".join(lines)
