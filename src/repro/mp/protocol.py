"""Protocol definitions: processes, transitions and driver messages.

A :class:`Protocol` bundles everything the model checker needs: the process
instances with their initial local states, the transition specifications of
every process, and the driver messages that trigger spontaneous transitions
(MP-Basset's "fake" messages, Appendix I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .channel import Network
from .errors import ProtocolDefinitionError
from .message import DRIVER, Message
from .process import ProcessDecl
from .state import GlobalState
from .transition import TransitionSpec


@dataclass(frozen=True)
class Protocol:
    """An MP protocol instance ready for model checking.

    Attributes:
        name: Human-readable protocol name, e.g. ``"paxos (2,3,1) quorum"``.
        processes: Declared process instances, in a fixed order that also
            fixes the layout of global states.
        transitions: All transition specifications (the set ``T`` of the
            paper, the union of the per-process sets ``T_i``).
        driver_messages: Messages injected into the initial state by the
            driver to trigger spontaneous transitions.
        metadata: Free-form description of the protocol setting (process
            counts, fault configuration, model variant).
        process_index: Shared ``pid -> position`` dictionary (set during
            validation); every global state of this protocol reuses it.
    """

    name: str
    processes: Tuple[ProcessDecl, ...]
    transitions: Tuple[TransitionSpec, ...]
    driver_messages: Tuple[Message, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        pids = [process.pid for process in self.processes]
        if len(set(pids)) != len(pids):
            raise ProtocolDefinitionError("duplicate process identifiers in protocol")
        pid_set = set(pids)
        # Shared pid -> position index: computed once here, handed to every
        # GlobalState of this protocol so functional updates never rebuild
        # it.  Read-only because every state trusts it without revalidation.
        object.__setattr__(
            self,
            "process_index",
            MappingProxyType({pid: position for position, pid in enumerate(pids)}),
        )
        names = [transition.name for transition in self.transitions]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ProtocolDefinitionError(f"duplicate transition names: {duplicates}")
        for transition in self.transitions:
            if transition.process_id not in pid_set:
                raise ProtocolDefinitionError(
                    f"transition {transition.name} belongs to unknown process "
                    f"{transition.process_id}"
                )
            if transition.quorum_peers is not None:
                unknown = set(transition.quorum_peers) - pid_set - {DRIVER}
                if unknown:
                    raise ProtocolDefinitionError(
                        f"transition {transition.name}: unknown quorum peers {sorted(unknown)}"
                    )
        for message in self.driver_messages:
            if message.recipient not in pid_set:
                raise ProtocolDefinitionError(
                    f"driver message {message.describe()} addressed to unknown process"
                )

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    @property
    def process_ids(self) -> Tuple[str, ...]:
        """All process identifiers in declaration order."""
        return tuple(process.pid for process in self.processes)

    def process(self, pid: str) -> ProcessDecl:
        """Return the declaration of process ``pid``."""
        for process in self.processes:
            if process.pid == pid:
                return process
        raise KeyError(f"unknown process: {pid}")

    def processes_of_type(self, ptype: str) -> Tuple[ProcessDecl, ...]:
        """Return all processes of a given type, in declaration order."""
        return tuple(process for process in self.processes if process.ptype == ptype)

    def transitions_of(self, pid: str) -> Tuple[TransitionSpec, ...]:
        """Return the transition set ``T_i`` of process ``pid``."""
        return tuple(t for t in self.transitions if t.process_id == pid)

    def transition(self, name: str) -> TransitionSpec:
        """Return the transition with the given (unique) name."""
        for transition in self.transitions:
            if transition.name == name:
                return transition
        raise KeyError(f"unknown transition: {name}")

    def transition_names(self) -> Tuple[str, ...]:
        """All transition names, in declaration order."""
        return tuple(transition.name for transition in self.transitions)

    def transitions_by_base_name(self) -> Dict[str, Tuple[TransitionSpec, ...]]:
        """Group transitions by their unrefined base name."""
        grouped: Dict[str, list] = {}
        for transition in self.transitions:
            grouped.setdefault(transition.base_name, []).append(transition)
        return {base: tuple(specs) for base, specs in grouped.items()}

    # ------------------------------------------------------------------ #
    # Semantics entry points
    # ------------------------------------------------------------------ #
    def initial_state(self) -> GlobalState:
        """Build the initial global state: initial locals + driver messages."""
        locals_ = tuple((process.pid, process.initial_state) for process in self.processes)
        return GlobalState(locals_, Network.of(self.driver_messages), index=self.process_index)

    # ------------------------------------------------------------------ #
    # Derivation (used by transition refinement)
    # ------------------------------------------------------------------ #
    def with_transitions(
        self,
        transitions: Iterable[TransitionSpec],
        name: Optional[str] = None,
        metadata_updates: Optional[Mapping[str, object]] = None,
    ) -> "Protocol":
        """Return a copy of the protocol with a different transition set.

        This is the hook used by the refinement strategies: processes,
        driver messages and initial states are untouched, only the
        transition set changes (and the state graph must stay the same,
        Definition 1).
        """
        metadata = dict(self.metadata)
        if metadata_updates:
            metadata.update(metadata_updates)
        return Protocol(
            name=name if name is not None else self.name,
            processes=self.processes,
            transitions=tuple(transitions),
            driver_messages=self.driver_messages,
            metadata=metadata,
        )

    def describe(self) -> str:
        """Return a multi-line summary of the protocol instance."""
        lines = [f"protocol: {self.name}"]
        lines.append(f"  processes ({len(self.processes)}):")
        for process in self.processes:
            lines.append(f"    {process.pid} [{process.ptype}]")
        lines.append(f"  transitions ({len(self.transitions)}):")
        for transition in self.transitions:
            kind = "quorum" if transition.is_quorum_transition else "single"
            lines.append(f"    {transition.name} @ {transition.process_id} ({kind})")
        lines.append(f"  driver messages: {len(self.driver_messages)}")
        return "\n".join(lines)
