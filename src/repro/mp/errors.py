"""Exception hierarchy for the MP modelling layer.

All errors raised by :mod:`repro.mp` derive from :class:`MPError` so callers
can catch modelling problems separately from checker or reduction errors.
"""

from __future__ import annotations


class MPError(Exception):
    """Base class for all errors raised by the MP modelling layer."""


class ProtocolDefinitionError(MPError):
    """A protocol definition is malformed.

    Raised while building a :class:`repro.mp.protocol.Protocol`, for example
    when two processes share an identifier, a transition references an
    unknown process, or a quorum specification is inconsistent.
    """


class TransitionExecutionError(MPError):
    """A transition action misbehaved during execution.

    Raised when an action returns an invalid local state, attempts to send a
    message on behalf of another process, or otherwise violates the
    message-passing computation model.
    """


class MessageError(MPError):
    """A message is malformed (unhashable payload, unknown recipient, ...)."""


class QuorumSpecificationError(MPError):
    """A quorum specification is invalid (non-positive size, bad kind, ...)."""
