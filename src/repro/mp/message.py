"""Messages of the message-passing computation model.

A message travels on a directed channel from its sender to its recipient.
Channels are unordered (Section II-A of the paper), so a message does not
carry a sequence number; it is fully described by its type, endpoints and
payload.  Messages are immutable and hashable so that they can be stored in
multiset channels and in hashable global states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from .errors import MessageError

#: Payload representation: a sorted tuple of ``(field name, value)`` pairs.
PayloadItems = Tuple[Tuple[str, Any], ...]


def _freeze_value(value: Any) -> Any:
    """Return a hashable, canonical form of a payload value.

    Lists and sets are converted to tuples / frozensets, dictionaries to
    sorted tuples of pairs.  Anything else must already be hashable.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze_value(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze_value(val)) for key, val in value.items()))
    try:
        hash(value)
    except TypeError as exc:
        raise MessageError(f"payload value {value!r} is not hashable") from exc
    return value


def freeze_payload(fields: Mapping[str, Any]) -> PayloadItems:
    """Convert a mapping of payload fields into the canonical tuple form."""
    return tuple(sorted((name, _freeze_value(value)) for name, value in fields.items()))


@dataclass(frozen=True)
class Message:
    """An immutable message of the MP model.

    Attributes:
        mtype: The message type.  Transitions are named after the message
            type they consume, following the MP-Basset convention.
        sender: Identifier of the sending process (or ``"driver"`` for the
            fake messages used to trigger spontaneous transitions).
        recipient: Identifier of the receiving process.
        payload: Canonical, sorted tuple of ``(field, value)`` pairs.
    """

    mtype: str
    sender: str
    recipient: str
    payload: PayloadItems = ()

    @classmethod
    def make(cls, mtype: str, sender: str, recipient: str, **fields: Any) -> "Message":
        """Build a message from keyword payload fields.

        Example:
            >>> Message.make("READ", "proposer1", "acceptor1", proposal_no=1)
            ... # doctest: +ELLIPSIS
            Message(mtype='READ', sender='proposer1', recipient='acceptor1', ...)
        """
        return cls(mtype=mtype, sender=sender, recipient=recipient, payload=freeze_payload(fields))

    def get(self, field: str, default: Any = None) -> Any:
        """Return a payload field, or ``default`` if the field is absent."""
        for name, value in self.payload:
            if name == field:
                return value
        return default

    def __getitem__(self, field: str) -> Any:
        """Return a payload field, raising :class:`KeyError` if absent."""
        for name, value in self.payload:
            if name == field:
                return value
        raise KeyError(field)

    def __contains__(self, field: str) -> bool:
        return any(name == field for name, _ in self.payload)

    def fields(self) -> dict:
        """Return the payload as a plain dictionary (a copy)."""
        return {name: value for name, value in self.payload}

    def channel(self) -> Tuple[str, str]:
        """Return the directed channel ``(sender, recipient)`` of the message."""
        return (self.sender, self.recipient)

    def describe(self) -> str:
        """Return a compact human-readable rendering of the message."""
        inner = ", ".join(f"{name}={value!r}" for name, value in self.payload)
        return f"{self.mtype}({inner}) {self.sender}->{self.recipient}"

    def sort_key(self) -> Tuple[str, str, str, str]:
        """Return a total ordering key for deterministic iteration.

        Payload values may have heterogeneous types, so the payload is
        compared through its ``repr``; this keeps exploration order
        deterministic without imposing comparability on payload values.
        """
        return (self.mtype, self.sender, self.recipient, repr(self.payload))


#: Identifier used as the sender of driver-generated ("fake") messages.
DRIVER = "driver"


def driver_message(mtype: str, recipient: str, **fields: Any) -> Message:
    """Build a driver message used to trigger a spontaneous transition.

    MP-Basset drivers send "fake" messages named after the transition they
    trigger (Appendix I of the paper); this helper mirrors that convention.
    """
    return Message.make(mtype, DRIVER, recipient, **fields)
