"""Seeded random-walk search: serial walker and parallel walker pool.

Both entry points share one walk kernel: derive walk ``i``'s RNG from
``(walk_seed, i)``, walk from the initial state picking a uniformly random
enabled execution per step, stop at ``max_depth`` (or a dead end, or a
violation), and record the exec-index path.  Because the per-walk streams
are pure functions of the root seed, the parallel pool is just a walk-index
partition — worker ``w`` of ``W`` runs walks ``w, w+W, w+2W, ...`` — and
finds exactly the violations the serial walker would, on exactly the same
walk indices.

Violations rebuild a first-class :class:`Counterexample` by replaying the
exec-index path through the object successor engine (the same rebuild
currency the parallel exhaustive engines use), so a swarm counterexample is
verified by construction: the replay recomputes every enabled set and fails
loudly if the path does not reproduce.

Honesty contract: a violation yields ``verified=False, complete=False``
(conclusive "violated"); a clean exhausted budget yields ``verified=True,
complete=False`` — which :func:`repro.checker.result.outcome_of` maps to
*inconclusive*, never "Verified".  Sampling cannot certify what it did not
exhaust.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..checker.counterexample import Counterexample, Step
from ..checker.result import SearchStatistics
from ..checker.search import SearchConfig, SearchOutcome, _maybe_span
from ..engine.events import PROGRESS_INTERVAL, Observer, emit
from ..mp.protocol import Protocol
from ..mp.semantics import SuccessorEngine
from ..checker.property import Invariant
from .filter import SwarmFilter
from .seeds import walk_rng

#: Walks per ``walk-batch`` telemetry span in the serial walker.
WALK_BATCH = 256

#: Walks between two batched flushes of a parallel worker's shared
#: walks-completed counter (coordinator progress ticks read it live).
WALK_FLUSH_BATCH = 32


@dataclass
class SwarmOutcomeStats:
    """Aggregate walk counters (merged across workers in parallel runs)."""

    walks_completed: int = 0
    steps: int = 0
    unique_fingerprints: int = 0
    deepest_walk: int = 0
    dead_ends: int = 0
    enabled_computations: int = 0
    violations: int = 0

    def merge(self, other: "SwarmOutcomeStats") -> None:
        self.walks_completed += other.walks_completed
        self.steps += other.steps
        self.unique_fingerprints += other.unique_fingerprints
        self.deepest_walk = max(self.deepest_walk, other.deepest_walk)
        self.dead_ends += other.dead_ends
        self.enabled_computations += other.enabled_computations
        self.violations += other.violations

    def as_dict(self) -> dict:
        return {
            "walks_completed": self.walks_completed,
            "steps": self.steps,
            "unique_fingerprints": self.unique_fingerprints,
            "deepest_walk": self.deepest_walk,
            "dead_ends": self.dead_ends,
            "enabled_computations": self.enabled_computations,
            "violations": self.violations,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SwarmOutcomeStats":
        return cls(**payload)


class _ObjectWalkGraph:
    """Walk adapter over the interned-object successor engine."""

    def __init__(self, protocol: Protocol, invariant: Invariant,
                 config: SearchConfig) -> None:
        # Walks revisit states along every interleaving, which is exactly
        # the access pattern the engine's caches exist for.
        self.engine = SuccessorEngine.for_search(
            protocol, stateful=False,
            max_cache_entries=config.engine_cache_capacity,
        )
        self.protocol = protocol
        self.invariant = invariant
        self.initial = self.engine.initial_state()

    def enabled(self, state):
        return self.engine.enabled(state)

    def step(self, state, execution):
        return self.engine.successor(state, execution)

    def fingerprint(self, state) -> int:
        return state.fingerprint()

    def holds(self, state) -> bool:
        return self.invariant.holds_in(state, self.protocol)

    def record_fastpath(self, telemetry) -> None:
        pass


class _FastWalkGraph:
    """Walk adapter over the packed fast path (fingerprint-native)."""

    def __init__(self, protocol: Protocol, invariant: Invariant,
                 config: SearchConfig, telemetry=None) -> None:
        from ..fastpath.compiler import FastSuccessorEngine
        from ..fastpath.search import make_invariant_checker

        with _maybe_span(telemetry, "compile", protocol=protocol.name):
            self.engine = FastSuccessorEngine(
                protocol, memo_capacity=config.fastpath_memo_capacity
            )
        self._holds = make_invariant_checker(
            self.engine, invariant, protocol,
            capacity=config.fastpath_memo_capacity,
        )
        self.initial = self.engine.initial_packed()

    def enabled(self, packed):
        return self.engine.enabled_packed(packed)

    def step(self, packed, execution):
        return self.engine.successor_packed(packed, execution)

    def fingerprint(self, packed) -> int:
        return self.engine.fingerprint(packed)

    def holds(self, packed) -> bool:
        return self._holds(packed)

    def record_fastpath(self, telemetry) -> None:
        telemetry.record_fastpath(self.engine)


def _make_graph(protocol: Protocol, invariant: Invariant,
                config: SearchConfig, telemetry=None):
    if config.successor_engine == "fast":
        return _FastWalkGraph(protocol, invariant, config, telemetry)
    return _ObjectWalkGraph(protocol, invariant, config)


def _run_one_walk(
    graph, walk_index: int, walk_seed: int, max_depth: int,
    visited: SwarmFilter, stats: SwarmOutcomeStats,
) -> Optional[Tuple[int, ...]]:
    """Walk ``walk_index``; the violating exec-index path, or ``None``.

    Pure given ``(walk_seed, walk_index)`` and the protocol: the RNG stream,
    and therefore the path, never depends on scheduling or worker count.
    """
    rng = walk_rng(walk_seed, walk_index)
    state = graph.initial
    path: List[int] = []
    while len(path) < max_depth:
        enabled = graph.enabled(state)
        stats.enabled_computations += 1
        if not enabled:
            stats.dead_ends += 1
            break
        choice = rng.choose(len(enabled))
        state = graph.step(state, enabled[choice])
        path.append(choice)
        stats.steps += 1
        if visited.add(graph.fingerprint(state)):
            stats.unique_fingerprints += 1
        if not graph.holds(state):
            stats.deepest_walk = max(stats.deepest_walk, len(path))
            stats.violations += 1
            return tuple(path)
    stats.deepest_walk = max(stats.deepest_walk, len(path))
    return None


def _replay_counterexample(
    protocol: Protocol, invariant: Invariant, path: Tuple[int, ...]
) -> Counterexample:
    """Rebuild the counterexample from a walk's execution-index path.

    Replayed through the object successor engine's deterministic enabled
    order (index-interchangeable with the packed engine), so the result is
    a first-class counterexample regardless of which walker found it.
    """
    engine = SuccessorEngine.for_search(protocol, stateful=True)
    cursor = engine.initial_state()
    initial = cursor
    steps: List[Step] = []
    for index in path:
        execution = engine.enabled(cursor)[index]
        cursor = engine.successor(cursor, execution)
        steps.append(Step(execution=execution, state=cursor))
    return Counterexample(
        initial_state=initial, steps=tuple(steps), property_name=invariant.name
    )


def _statistics_of(stats: SwarmOutcomeStats, elapsed: float) -> SearchStatistics:
    """Map walk counters onto the shared statistics record.

    ``states_visited`` is the *distinct-state estimate* from the shared
    filter (walks revisit freely, so raw step counts would be misleading);
    the revisited remainder lands in ``revisits``.
    """
    return SearchStatistics(
        states_visited=stats.unique_fingerprints,
        transitions_executed=stats.steps,
        revisits=max(0, stats.steps - stats.unique_fingerprints),
        max_depth=stats.deepest_walk,
        elapsed_seconds=elapsed,
        enabled_set_computations=stats.enabled_computations,
    )


def _record_swarm_telemetry(telemetry, graph, stats: SwarmOutcomeStats,
                            elapsed: float) -> None:
    if telemetry is None:
        return
    metrics = telemetry.metrics
    metrics.gauge(
        "swarm_walks_completed", "Random walks completed this run"
    ).set(stats.walks_completed)
    metrics.gauge(
        "swarm_walks_per_second", "Walk throughput", unit="walks/s"
    ).set(stats.walks_completed / elapsed if elapsed > 0 else 0.0)
    metrics.gauge(
        "swarm_unique_fingerprints",
        "Distinct-state estimate from the shared visited filter",
    ).set(stats.unique_fingerprints)
    graph.record_fastpath(telemetry)


def _budget_exhausted(config: SearchConfig, stats: SwarmOutcomeStats,
                      start_time: float) -> bool:
    if config.max_states is not None and stats.steps >= config.max_states:
        return True
    if (config.max_seconds is not None
            and time.perf_counter() - start_time >= config.max_seconds):
        return True
    return False


def _emit_walk_progress(observer, stats: SwarmOutcomeStats) -> None:
    emit(
        observer, "progress",
        walks_completed=stats.walks_completed,
        violations=stats.violations,
        unique_fingerprints=stats.unique_fingerprints,
        states_visited=stats.unique_fingerprints,
    )


def _finish(
    protocol, invariant, graph, stats, violation, observer, telemetry,
    start_time, incomplete_reason: Optional[str] = None,
) -> SearchOutcome:
    """Shared epilogue: replay, telemetry, honest outcome assembly."""
    counterexample = None
    if violation is not None:
        walk_index, path = violation
        if path:
            with _maybe_span(telemetry, "ce-replay", path_length=len(path),
                             walk_index=walk_index):
                counterexample = _replay_counterexample(protocol, invariant, path)
        else:
            counterexample = Counterexample(
                initial_state=(
                    graph.initial if isinstance(graph, _ObjectWalkGraph)
                    else graph.engine.decode(graph.initial)
                ),
                steps=(), property_name=invariant.name,
            )
    elapsed = time.perf_counter() - start_time
    _record_swarm_telemetry(telemetry, graph, stats, elapsed)
    # Never complete: sampling exhausted its budget, not the state space.
    return SearchOutcome(
        verified=counterexample is None,
        complete=False,
        counterexample=counterexample,
        statistics=_statistics_of(stats, elapsed),
        incomplete_reason=incomplete_reason,
    )


def swarm_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    walks: int = 1000,
    walk_seed: int = 0,
    observer: Optional[Observer] = None,
    telemetry=None,
    visited_filter: Optional[SwarmFilter] = None,
) -> SearchOutcome:
    """Serial seeded random-walk search.

    Stops at the first violation (a sampler has nothing conclusive to add
    past one counterexample); otherwise runs the full walk budget, bounded
    additionally by ``config.max_states`` (total steps) and
    ``config.max_seconds``.
    """
    config = config or SearchConfig(stateful=False)
    max_depth = config.max_depth or 256
    start_time = time.perf_counter()
    stats = SwarmOutcomeStats()
    graph = _make_graph(protocol, invariant, config, telemetry)
    visited = visited_filter or SwarmFilter()

    if visited.add(graph.fingerprint(graph.initial)):
        stats.unique_fingerprints += 1
    if not graph.holds(graph.initial):
        stats.violations += 1
        emit(observer, "violation-found", states_visited=1, depth=0,
             walk_index=0)
        return _finish(protocol, invariant, graph, stats, (0, ()),
                       observer, telemetry, start_time)

    next_progress = PROGRESS_INTERVAL
    walk_index = 0
    while walk_index < walks:
        batch_end = min(walk_index + WALK_BATCH, walks)
        with _maybe_span(telemetry, "walk-batch", batch_start=walk_index,
                         batch_size=batch_end - walk_index):
            while walk_index < batch_end:
                path = _run_one_walk(
                    graph, walk_index, walk_seed, max_depth, visited, stats
                )
                stats.walks_completed += 1
                if path is not None:
                    emit(observer, "violation-found",
                         states_visited=stats.unique_fingerprints,
                         depth=len(path), walk_index=walk_index)
                    return _finish(protocol, invariant, graph, stats,
                                   (walk_index, path), observer, telemetry,
                                   start_time)
                walk_index += 1
                if stats.walks_completed >= next_progress:
                    next_progress += PROGRESS_INTERVAL
                    _emit_walk_progress(observer, stats)
                if _budget_exhausted(config, stats, start_time):
                    return _finish(protocol, invariant, graph, stats, None,
                                   observer, telemetry, start_time)
    return _finish(protocol, invariant, graph, stats, None, observer,
                   telemetry, start_time)


# --------------------------------------------------------------------- #
# Parallel walker pool
# --------------------------------------------------------------------- #

def _swarm_worker(
    worker_id: int,
    workers: int,
    protocol: Protocol,
    invariant: Invariant,
    config: SearchConfig,
    walks: int,
    walk_seed: int,
    visited: SwarmFilter,
    stop_event,
    best_violation,
    walks_counter,
    result_queue,
    chaos: Optional[str] = None,
) -> None:
    """One pool worker: walks ``worker_id, worker_id+workers, ...``.

    The walk-index partition carries the determinism: which worker runs a
    walk never changes what the walk does, so the set of violating walk
    indices is identical to the serial run's.  A first violation does not
    hard-stop the pool — it lowers the shared ``best_violation`` bound, and
    workers keep walking only the indices *below* it.  Every walk below the
    final bound therefore completes, which makes the reported violation the
    globally minimal violating walk index — the same one the serial
    schedule reports — independent of worker count and timing.

    ``chaos`` optionally injects planned faults (one "command" per walk);
    because walks are pure in ``(walk_seed, walk_index)``, a crashed
    worker's residue class can be re-run from scratch by a replacement with
    an identical set of violating walk indices.
    """
    try:
        from ..chaos import chaos_hook_for_worker

        hook = chaos_hook_for_worker(chaos, worker_id, workers)
        stats = SwarmOutcomeStats()
        graph = _make_graph(protocol, invariant, config)
        max_depth = config.max_depth or 256
        start_time = time.perf_counter()
        violations: List[Tuple[int, Tuple[int, ...]]] = []
        truncated = False
        unflushed = 0

        walk_index = worker_id
        while walk_index < walks:
            if stop_event.is_set():
                truncated = True
                break
            if walk_index >= best_violation.value:
                # Someone already violated at a lower index than any walk
                # left in this worker's residue class.
                break
            if _budget_exhausted(config, stats, start_time):
                truncated = True
                break
            if hook is not None:
                hook.on_command("walk")
            path = _run_one_walk(
                graph, walk_index, walk_seed, max_depth, visited, stats
            )
            stats.walks_completed += 1
            unflushed += 1
            if unflushed >= WALK_FLUSH_BATCH:
                with walks_counter.get_lock():
                    walks_counter.value += unflushed
                unflushed = 0
            if path is not None:
                violations.append((walk_index, path))
                with best_violation.get_lock():
                    best_violation.value = min(
                        best_violation.value, walk_index
                    )
                # This worker's remaining indices all exceed walk_index.
                break
            walk_index += workers
        if unflushed:
            with walks_counter.get_lock():
                walks_counter.value += unflushed
        result_queue.put(
            ("report", worker_id, stats.as_dict(), violations, truncated)
        )
    except Exception:  # pragma: no cover - ships the traceback home
        import traceback

        result_queue.put(("error", worker_id, traceback.format_exc()))


def parallel_swarm_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    walks: int = 1000,
    walk_seed: int = 0,
    workers: int = 2,
    observer: Optional[Observer] = None,
    telemetry=None,
    mp_context=None,
    worker_timeout: Optional[float] = None,
) -> SearchOutcome:
    """Parallel walker pool over the fork substrate.

    Walks are embarrassingly parallel: no frontier, no claim table — just a
    walk-index partition, a fork-shared visited filter, a batched shared
    walks-completed counter for live progress, and a shared best-violation
    bound for early abort.  A violation at walk ``v`` cancels only walks
    ``> v``; walks below the bound always complete, so the reported
    violation is the globally minimal violating walk index — identical to
    the serial walker's, at any worker count.

    Fault tolerance: under ``config.supervise`` (the default) a worker
    that dies without reporting is replaced by a fresh process re-running
    its entire residue class — walks are pure in ``(walk_seed,
    walk_index)``, so the verdict is identical to an uncrashed run (the
    shared visited filter keeps the dead worker's additions, so the
    distinct-state *estimate* may dip; the verdict never does).  With
    supervision off or the restart budget exhausted, the run returns an
    honest partial outcome (``incomplete_reason="worker crash"``) built
    from the reports that did arrive.
    """
    from ..parallel.bfs import MAX_WORKER_RESTARTS, default_mp_context
    from ..parallel.worker import (
        WorkerCrashError,
        collect_replies,
        shutdown_processes,
    )

    config = config or SearchConfig(stateful=False)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    context = mp_context or default_mp_context()
    if context is None:
        raise RuntimeError(
            "parallel swarm search requires the 'fork' start method"
        )
    start_time = time.perf_counter()
    stats = SwarmOutcomeStats()
    graph = _make_graph(protocol, invariant, config, telemetry)
    visited = SwarmFilter.shared(context)

    if visited.add(graph.fingerprint(graph.initial)):
        stats.unique_fingerprints += 1
    if not graph.holds(graph.initial):
        stats.violations += 1
        emit(observer, "violation-found", states_visited=1, depth=0,
             walk_index=0)
        return _finish(protocol, invariant, graph, stats, (0, ()),
                       observer, telemetry, start_time)

    stop_event = context.Event()
    best_violation = context.Value("l", walks)  # sentinel: no violation yet
    walks_counter = context.Value("l", 0)
    result_queue = context.Queue()
    processes = []
    violation: Optional[Tuple[int, Tuple[int, ...]]] = None
    incomplete_reason: Optional[str] = None

    def spawn(worker_id: int, chaos: Optional[str]):
        process = context.Process(
            target=_swarm_worker,
            args=(worker_id, workers, protocol, invariant, config,
                  walks, walk_seed, visited, stop_event,
                  best_violation, walks_counter, result_queue, chaos),
        )
        process.daemon = True
        process.start()
        return process

    try:
        with _maybe_span(telemetry, "walk-batch", batch_start=0,
                         batch_size=walks, workers=workers):
            for worker_id in range(workers):
                processes.append(spawn(worker_id, config.chaos))

            next_progress = PROGRESS_INTERVAL
            replies = None
            restarts_used = 0
            while True:
                while any(process.is_alive() for process in processes):
                    time.sleep(0.05)
                    completed = walks_counter.value
                    if completed >= next_progress:
                        next_progress = (
                            completed - completed % PROGRESS_INTERVAL
                            + PROGRESS_INTERVAL
                        )
                        emit(observer, "progress", walks_completed=completed,
                             violations=0, unique_fingerprints=0,
                             states_visited=0)
                try:
                    replies = collect_replies(
                        result_queue, workers, "report", worker_timeout,
                        processes, replies,
                    )
                    break
                except WorkerCrashError as crash:
                    for worker_id in crash.workers:
                        emit(observer, "worker-crashed", worker=worker_id,
                             phase="report")
                        if telemetry is not None:
                            telemetry.metrics.counter(
                                "worker_crashes",
                                "worker processes that died without replying",
                            ).inc()
                    if (
                        not config.supervise
                        or restarts_used + len(crash.workers) > MAX_WORKER_RESTARTS
                    ):
                        # Honest partial outcome from the reports that did
                        # arrive; never a hang or a bare traceback.
                        replies = [
                            reply for reply in (crash.replies or [])
                            if reply is not None
                        ]
                        incomplete_reason = "worker crash"
                        break
                    replies = crash.replies
                    for worker_id in crash.workers:
                        restarts_used += 1
                        processes[worker_id].join(timeout=0.1)
                        # Replacements re-run the whole residue class from
                        # scratch (walks are pure), without the fault plan.
                        processes[worker_id] = spawn(worker_id, None)
                        emit(observer, "worker-restarted", worker=worker_id,
                             attempt=restarts_used)
                        if telemetry is not None:
                            telemetry.metrics.counter(
                                "worker_restarts",
                                "crashed workers restarted by the supervisor",
                            ).inc()
        all_violations: List[Tuple[int, Tuple[int, ...]]] = []
        for reply in replies:
            worker_id, worker_stats, worker_violations, _truncated = reply
            merged = SwarmOutcomeStats.from_dict(worker_stats)
            stats.merge(merged)
            all_violations.extend(
                (index, tuple(path)) for index, path in worker_violations
            )
            emit(observer, "worker-report", worker=worker_id,
                 claimed=merged.walks_completed,
                 transitions=merged.steps,
                 revisits=max(0, merged.steps - merged.unique_fingerprints))
            if telemetry is not None:
                telemetry.record_worker(worker_id, {
                    "claimed": merged.walks_completed,
                    "transitions_executed": merged.steps,
                    "revisits": max(
                        0, merged.steps - merged.unique_fingerprints
                    ),
                })
        if all_violations:
            violation = min(all_violations, key=lambda entry: entry[0])
            emit(observer, "violation-found",
                 states_visited=stats.unique_fingerprints,
                 depth=len(violation[1]), walk_index=violation[0])
    finally:
        stop_event.set()
        shutdown_processes(processes, queues=[result_queue],
                           telemetry=telemetry)

    return _finish(protocol, invariant, graph, stats, violation, observer,
                   telemetry, start_time, incomplete_reason=incomplete_reason)
