"""Swarm checking: seeded random-walk sampling of huge state spaces.

Exhaustive search — even packed and reduced — caps out when a protocol x
fault configuration's reachable graph stops fitting in memory or time.  The
swarm backend trades completeness for reach: it fires a budget of
independent random walks through the state graph, each walk picking one
enabled execution uniformly at random per step.  A violation found on any
walk is conclusive (the walk's exec-index path replays into a first-class
:class:`~repro.checker.counterexample.Counterexample`); exhausting the
budget without a violation is honestly *inconclusive* — sampling can never
certify a state space it did not exhaust.

Determinism is the load-bearing property: every walk's private RNG stream
is derived from ``(root_seed, walk_index)`` via the splitmix64 mixer
(:mod:`repro.swarm.seeds`), so a run — serial or parallel, any worker
count — is bit-reproducible from one root seed, and a reported violation
names the walk index that found it.
"""

from .filter import SwarmFilter
from .search import SwarmOutcomeStats, parallel_swarm_search, swarm_search
from .seeds import WalkRng, walk_stream_seed

__all__ = [
    "SwarmFilter",
    "SwarmOutcomeStats",
    "WalkRng",
    "parallel_swarm_search",
    "swarm_search",
    "walk_stream_seed",
]
