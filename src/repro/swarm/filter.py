"""A shared probabilistic visited filter for coverage estimation.

Swarm walks keep no exact visited-state store — that is the point of
sampling — but a run still wants to report *how much* of the state space
its walks touched.  :class:`SwarmFilter` is a fixed-size one-hash Bloom
filter over state fingerprints: ``add`` sets the fingerprint's bit and
reports whether it was newly set, so the number of ``True`` returns is a
(slightly under-counting, collision-bounded) estimate of distinct states
seen.  It is telemetry, not a store: walks never consult it to prune, so
its false positives cannot mask violations.

The bit array lives either in a local ``bytearray`` (serial runs) or in a
lock-free ``multiprocessing.Array`` of 64-bit words (parallel runs).  The
parallel variant's read-modify-write on a word is racy by design: a lost
update means two workers both count one fingerprint as new, nudging the
estimate up by at most the number of simultaneous first-touches — noise
well inside the filter's own collision error, and not worth a lock on the
walk hot path.
"""

from __future__ import annotations

from typing import Optional

from ..checker.statestore import mix_fingerprint

#: Default filter size: 2**22 bits = 512 KiB, good for ~10**6 distinct
#: states at <12% collision under-count.
DEFAULT_BITS_LOG2 = 22


class SwarmFilter:
    """One-hash Bloom filter over 64-bit state fingerprints."""

    def __init__(self, bits_log2: int = DEFAULT_BITS_LOG2, shared_words=None) -> None:
        if bits_log2 < 3 or bits_log2 > 34:
            raise ValueError(f"bits_log2 out of range: {bits_log2}")
        self.bits_log2 = bits_log2
        self._mask = (1 << bits_log2) - 1
        if shared_words is not None:
            self._words = shared_words
        else:
            self._words = bytearray(1 << max(0, bits_log2 - 3))

    @classmethod
    def shared(cls, mp_context, bits_log2: int = DEFAULT_BITS_LOG2) -> "SwarmFilter":
        """A filter whose bits live in fork-shared memory (lock-free)."""
        words = mp_context.RawArray("Q", 1 << max(0, bits_log2 - 6))
        return cls(bits_log2, shared_words=words)

    def _is_shared(self) -> bool:
        return not isinstance(self._words, bytearray)

    def add(self, fingerprint: int) -> bool:
        """Set the fingerprint's bit; ``True`` when it was newly set."""
        bit = mix_fingerprint(fingerprint) & self._mask
        if self._is_shared():
            index, offset = bit >> 6, bit & 63
            word = self._words[index]
            if word & (1 << offset):
                return False
            self._words[index] = word | (1 << offset)
            return True
        index, offset = bit >> 3, bit & 7
        byte = self._words[index]
        if byte & (1 << offset):
            return False
        self._words[index] = byte | (1 << offset)
        return True

    def __contains__(self, fingerprint: int) -> bool:
        bit = mix_fingerprint(fingerprint) & self._mask
        if self._is_shared():
            return bool(self._words[bit >> 6] & (1 << (bit & 63)))
        return bool(self._words[bit >> 3] & (1 << (bit & 7)))

    def population(self) -> int:
        """Exact number of set bits (a scan — not for the hot path)."""
        if self._is_shared():
            return sum(bin(word).count("1") for word in self._words)
        return sum(bin(byte).count("1") for byte in self._words)

    def saturation(self) -> float:
        """Fraction of bits set; near 1.0 the unique estimate is garbage."""
        return self.population() / (1 << self.bits_log2)
