"""Deterministic per-walk random streams from one root seed.

The whole swarm contract rests on one derivation: walk ``i`` of a run
rooted at ``s`` draws from a stream that is a pure function of ``(s, i)``.
That makes runs bit-reproducible across worker counts and walk schedules
(workers interleave *which* walks they run, never what a walk does), lets a
violation report name the walk index that found it, and lets a single walk
be replayed in isolation.

The stream itself is splitmix64 — the same finaliser the sharded stores
already use (:func:`repro.checker.statestore.mix_fingerprint`) with the
golden-gamma increment.  Splitmix64 passes BigCrush and is cheap enough
that seeding millions of walks is free; no ``random.Random`` instances are
allocated on the walk hot path.
"""

from __future__ import annotations

from ..checker.statestore import mix_fingerprint

#: 2**64 / phi — the splitmix64 stream increment.
GOLDEN_GAMMA = 0x9E3779B97F4A7C15

_MASK64 = 0xFFFFFFFFFFFFFFFF


def walk_stream_seed(root_seed: int, walk_index: int) -> int:
    """The seed of walk ``walk_index`` in the run rooted at ``root_seed``.

    A pure function: the same pair always yields the same 64-bit seed, and
    distinct walk indices land in well-separated splitmix64 streams (the
    golden-gamma stride keeps consecutive indices decorrelated after the
    finaliser).
    """
    return mix_fingerprint((root_seed + (walk_index + 1) * GOLDEN_GAMMA) & _MASK64)


class WalkRng:
    """One walk's private splitmix64 stream.

    Minimal by design: the only operation a walker needs is "pick one of
    ``n`` enabled executions", so that is the only operation offered.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_word(self) -> int:
        """The next raw 64-bit output of the stream."""
        self._state = (self._state + GOLDEN_GAMMA) & _MASK64
        return mix_fingerprint(self._state)

    def choose(self, n: int) -> int:
        """A uniform index in ``range(n)`` (``n`` must be positive).

        Uses rejection sampling over the top of the 64-bit range so the
        choice is exactly uniform — modulo bias, however small, would make
        walk distributions depend on the enabled-set size in a way that is
        hard to reason about when comparing seeds.
        """
        if n <= 0:
            raise ValueError(f"choose() needs a positive n, got {n}")
        if n == 1:
            return 0
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % n)
        while True:
            word = self.next_word()
            if word < limit:
                return word % n


def walk_rng(root_seed: int, walk_index: int) -> WalkRng:
    """The ready-to-draw RNG of walk ``walk_index`` under ``root_seed``."""
    return WalkRng(walk_stream_seed(root_seed, walk_index))
