"""Echo Multicast models (Section V-A of the paper).

Reiter-style Byzantine-tolerant consistent multicast in quorum-transition
and single-message variants, with explicit Byzantine initiator / receiver
attack behaviours and the agreement invariant.  The "wrong agreement"
experiments use settings whose Byzantine receiver count exceeds the assumed
threshold (``MulticastConfig.exceeds_threshold``).
"""

from .config import (
    ByzantineInitiatorState,
    ByzantineReceiverState,
    HonestInitiatorState,
    HonestReceiverState,
    MulticastConfig,
)
from .properties import agreement_invariant, echo_uniqueness, honest_delivery_integrity
from .quorum import build_multicast_quorum
from .single import build_multicast_single

__all__ = [
    "ByzantineInitiatorState",
    "ByzantineReceiverState",
    "HonestInitiatorState",
    "HonestReceiverState",
    "MulticastConfig",
    "agreement_invariant",
    "build_multicast_quorum",
    "build_multicast_single",
    "echo_uniqueness",
    "honest_delivery_integrity",
]
