"""Echo Multicast modelled with single-message transitions only.

The echo-collection quorum transitions of the initiators are replaced by
per-message counting transitions (Figure 3 pattern); receiver-side handling
is unchanged, since it is single-message in both models.
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec
from .byzantine import (
    byz_start_guard,
    make_byz_echo_single_action,
    make_byz_receiver_init_action,
    make_byz_start_action,
)
from .config import (
    ByzantineInitiatorState,
    ByzantineReceiverState,
    HonestInitiatorState,
    HonestReceiverState,
    MulticastConfig,
)
from .quorum import (
    _commit_action,
    _init_action,
    _mcast_action,
    _mcast_guard,
    add_receiver_loss_transitions,
)


def _echo_single_action(receiver_ids, quorum: int):
    """Honest initiator ECHO, one echo at a time (Figure 3 pattern)."""

    def action(local: HonestInitiatorState, messages, ctx: ActionContext):
        if local.phase != "collecting":
            return local
        (message,) = messages
        if message["value"] != local.value:
            return local
        count = local.echo_count + 1
        if count >= quorum:
            for receiver in receiver_ids:
                ctx.send(receiver, "COMMIT", value=local.value)
            return local.update(phase="committed", echo_count=0)
        return local.update(echo_count=count)

    return action


def build_multicast_single(config: MulticastConfig) -> Protocol:
    """Build the single-message ("no quorum") Echo Multicast model."""
    builder = ProtocolBuilder(f"echo multicast {config.setting_label} single-message")
    honest_receivers = config.honest_receiver_ids()
    byz_receivers = config.byzantine_receiver_ids()
    receivers = config.receiver_ids()
    honest_initiators = config.honest_initiator_ids()
    byz_initiators = config.byzantine_initiator_ids()
    initiators = config.initiator_ids()
    receiver_set = frozenset(receivers)
    initiator_set = frozenset(initiators)
    quorum = config.echo_quorum

    for pid in honest_initiators:
        builder.add_process(pid, "initiator", HonestInitiatorState(value=config.honest_value(pid)))
    for pid in byz_initiators:
        builder.add_process(pid, "byz_initiator", ByzantineInitiatorState())
    for pid in honest_receivers:
        builder.add_process(pid, "receiver", HonestReceiverState())
    for pid in byz_receivers:
        builder.add_process(pid, "byz_receiver", ByzantineReceiverState())

    for pid in honest_initiators:
        builder.add_transition(
            name=f"MCAST@{pid}",
            process_id=pid,
            message_type="MCAST",
            guard=_mcast_guard,
            action=_mcast_action(receivers),
            annotation=LporAnnotation(
                sends=(SendSpec("INIT", recipients=receiver_set),),
                possible_senders=frozenset({DRIVER}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"ECHO@{pid}",
            process_id=pid,
            message_type="ECHO",
            action=_echo_single_action(receivers, quorum),
            annotation=LporAnnotation(
                sends=(SendSpec("COMMIT", recipients=receiver_set),),
                possible_senders=receiver_set,
                priority=1,
            ),
        )
        builder.trigger("MCAST", pid)

    for pid in byz_initiators:
        builder.add_transition(
            name=f"B_MCAST@{pid}",
            process_id=pid,
            message_type="B_MCAST",
            guard=byz_start_guard,
            action=make_byz_start_action(config, pid),
            annotation=LporAnnotation(
                sends=(SendSpec("INIT", recipients=receiver_set),),
                possible_senders=frozenset({DRIVER}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"ECHO@{pid}",
            process_id=pid,
            message_type="ECHO",
            action=make_byz_echo_single_action(config, pid),
            annotation=LporAnnotation(
                sends=(SendSpec("COMMIT", recipients=frozenset(honest_receivers)),),
                possible_senders=receiver_set,
                priority=1,
            ),
        )
        builder.trigger("B_MCAST", pid)

    for pid in honest_receivers:
        builder.add_transition(
            name=f"INIT@{pid}",
            process_id=pid,
            message_type="INIT",
            action=_init_action,
            annotation=LporAnnotation(
                sends=(SendSpec("ECHO", to_senders_only=True),),
                possible_senders=initiator_set,
                is_reply=True,
                priority=2,
            ),
        )
        builder.add_transition(
            name=f"COMMIT@{pid}",
            process_id=pid,
            message_type="COMMIT",
            action=_commit_action,
            annotation=LporAnnotation(
                possible_senders=initiator_set,
                visible=True,
                finishes_instance=True,
                priority=0,
            ),
        )

    for pid in byz_receivers:
        builder.add_transition(
            name=f"INIT@{pid}",
            process_id=pid,
            message_type="INIT",
            action=make_byz_receiver_init_action(config),
            annotation=LporAnnotation(
                sends=(SendSpec("ECHO", to_senders_only=True),),
                possible_senders=initiator_set,
                is_reply=True,
                priority=2,
            ),
        )

    if config.message_loss:
        add_receiver_loss_transitions(builder, honest_receivers, initiator_set)

    builder.set_metadata(
        protocol="echo multicast",
        model="single-message",
        setting=config.setting_label,
        echo_quorum=quorum,
        assumed_faults=config.assumed_faults,
        exceeds_threshold=config.exceeds_threshold,
        message_loss=config.message_loss,
    )
    return builder.build()


__all__ = ["build_multicast_single"]
