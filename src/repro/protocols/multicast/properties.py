"""Properties of the Echo Multicast models."""

from __future__ import annotations

from typing import Dict, Set

from ...checker.property import Invariant
from ...mp.protocol import Protocol
from ...mp.state import GlobalState


def _delivered_by_initiator(state: GlobalState, protocol: Protocol) -> Dict[str, Set[str]]:
    """Union, over honest receivers, of delivered values grouped by initiator."""
    delivered: Dict[str, Set[str]] = {}
    for receiver in protocol.processes_of_type("receiver"):
        for initiator, value in state.local(receiver.pid).delivered:
            delivered.setdefault(initiator, set()).add(value)
    return delivered


def agreement_invariant() -> Invariant:
    """No two honest receivers deliver different messages from the same initiator.

    This is the agreement property of consistent multicast (Section V-A);
    it holds as long as the number of Byzantine receivers stays within the
    assumed threshold and fails in the "wrong agreement" settings.
    """

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        return all(
            len(values) <= 1
            for values in _delivered_by_initiator(state, protocol).values()
        )

    return Invariant(
        name="agreement",
        predicate=predicate,
        network_sensitive=False,
        description="honest receivers never deliver conflicting messages per initiator",
    )


def honest_delivery_integrity() -> Invariant:
    """Messages delivered from honest initiators are the ones they multicast.

    A sanity invariant of the model: Byzantine receivers cannot forge a
    commit on behalf of an honest initiator, so every value delivered from
    an honest initiator must be that initiator's own message.
    """

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        honest = {
            process.pid: state.local(process.pid).value
            for process in protocol.processes_of_type("initiator")
        }
        for initiator, values in _delivered_by_initiator(state, protocol).items():
            if initiator in honest and values - {honest[initiator]}:
                return False
        return True

    return Invariant(
        name="delivery-integrity",
        predicate=predicate,
        network_sensitive=False,
        description="delivered values from honest initiators equal their multicast message",
    )


def echo_uniqueness() -> Invariant:
    """Honest receivers echo at most one value per initiator (model sanity check)."""

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        for receiver in protocol.processes_of_type("receiver"):
            per_initiator: Dict[str, Set[str]] = {}
            for initiator, value in state.local(receiver.pid).echoed:
                per_initiator.setdefault(initiator, set()).add(value)
            if any(len(values) > 1 for values in per_initiator.values()):
                return False
        return True

    return Invariant(
        name="echo-uniqueness",
        predicate=predicate,
        network_sensitive=False,
        description="an honest receiver signs at most one message per initiator",
    )


__all__ = ["agreement_invariant", "echo_uniqueness", "honest_delivery_integrity"]
