"""Configuration and local states of the Echo Multicast models.

Echo Multicast (Reiter's consistent multicast from Rampart, reference [26]
of the paper) lets an initiator multicast a message to a set of receivers
such that no two honest receivers deliver different messages from the same
initiator, even if up to ``f`` of the ``n`` receivers (with ``n > 3f``) and
any number of initiators are Byzantine.  The initiator collects *echoes*
from an echo quorum of ``ceil((n + f + 1) / 2)`` receivers before committing
its message; two echo quorums intersect in an honest receiver, which is what
prevents conflicting commits.

A multicast setting ``(HR, HI, BR, BI)`` gives the number of honest
receivers, honest initiators, Byzantine receivers and Byzantine initiators
(Section V-A).  The echo quorum is always computed from the *assumed* fault
threshold ``f = floor((n - 1) / 3)``; the "wrong agreement" settings exceed
that threshold with extra Byzantine receivers, which is why agreement then
fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ...mp.process import LocalState


@dataclass(frozen=True)
class MulticastConfig:
    """An Echo Multicast setting ``(HR, HI, BR, BI)``.

    Attributes:
        honest_receivers: Number of honest receiver processes.
        honest_initiators: Number of honest initiator processes.
        byzantine_receivers: Number of Byzantine receiver processes.
        byzantine_initiators: Number of Byzantine initiator processes.
        message_loss: Model lossy channels toward the honest receivers:
            every pending INIT/COMMIT can nondeterministically be *dropped*
            (consumed without effect) instead of handled.  Loss only removes
            deliveries, so it cannot create agreement violations a lossless
            run lacks — but it multiplies the interleavings, which is what
            makes the lossy cells a natural swarm-sampling workload.
    """

    honest_receivers: int = 3
    honest_initiators: int = 0
    byzantine_receivers: int = 1
    byzantine_initiators: int = 1
    message_loss: bool = False

    def __post_init__(self) -> None:
        if self.honest_receivers < 1:
            raise ValueError("a multicast setting needs at least one honest receiver")
        if self.honest_initiators + self.byzantine_initiators < 1:
            raise ValueError("a multicast setting needs at least one initiator")

    # ------------------------------------------------------------------ #
    # Derived parameters
    # ------------------------------------------------------------------ #
    @property
    def receivers_total(self) -> int:
        """Total number of receivers ``n``."""
        return self.honest_receivers + self.byzantine_receivers

    @property
    def assumed_faults(self) -> int:
        """The fault threshold ``f`` the protocol is configured for.

        Computed as ``floor((n - 1) / 3)``; the wrong-agreement settings
        deploy more Byzantine receivers than this, violating the protocol's
        assumption.
        """
        return (self.receivers_total - 1) // 3

    @property
    def echo_quorum(self) -> int:
        """Echo quorum size ``ceil((n + f + 1) / 2)``."""
        return math.ceil((self.receivers_total + self.assumed_faults + 1) / 2)

    @property
    def exceeds_threshold(self) -> bool:
        """True if the actual Byzantine receivers exceed the assumed threshold."""
        return self.byzantine_receivers > self.assumed_faults

    @property
    def setting_label(self) -> str:
        """The paper's ``(HR,HI,BR,BI)`` notation."""
        return (
            f"({self.honest_receivers},{self.honest_initiators},"
            f"{self.byzantine_receivers},{self.byzantine_initiators})"
        )

    # ------------------------------------------------------------------ #
    # Process identifiers and multicast payloads
    # ------------------------------------------------------------------ #
    def honest_receiver_ids(self) -> Tuple[str, ...]:
        return tuple(f"receiver{i + 1}" for i in range(self.honest_receivers))

    def byzantine_receiver_ids(self) -> Tuple[str, ...]:
        return tuple(f"byz_receiver{i + 1}" for i in range(self.byzantine_receivers))

    def receiver_ids(self) -> Tuple[str, ...]:
        return self.honest_receiver_ids() + self.byzantine_receiver_ids()

    def honest_initiator_ids(self) -> Tuple[str, ...]:
        return tuple(f"initiator{i + 1}" for i in range(self.honest_initiators))

    def byzantine_initiator_ids(self) -> Tuple[str, ...]:
        return tuple(f"byz_initiator{i + 1}" for i in range(self.byzantine_initiators))

    def initiator_ids(self) -> Tuple[str, ...]:
        return self.honest_initiator_ids() + self.byzantine_initiator_ids()

    def honest_value(self, initiator: str) -> str:
        """The message an honest initiator multicasts."""
        return f"msg[{initiator}]"

    def equivocation_values(self, initiator: str) -> Tuple[str, str]:
        """The two conflicting messages a Byzantine initiator tries to commit."""
        return (f"X[{initiator}]", f"Y[{initiator}]")

    def equivocation_groups(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Split the honest receivers into the two groups a Byzantine initiator targets."""
        honest = self.honest_receiver_ids()
        half = (len(honest) + 1) // 2
        return honest[:half], honest[half:]


@dataclass(frozen=True)
class HonestInitiatorState(LocalState):
    """Local state of an honest initiator.

    Attributes:
        value: The message this initiator multicasts.
        phase: ``"idle"`` / ``"collecting"`` / ``"committed"``.
        echo_count: Matching echoes counted so far (single-message model).
    """

    value: str
    phase: str = "idle"
    echo_count: int = 0


@dataclass(frozen=True)
class ByzantineInitiatorState(LocalState):
    """Local state of a Byzantine (equivocating) initiator.

    Attributes:
        phase: ``"idle"`` before the attack starts, ``"active"`` afterwards.
        committed: Which of its two conflicting messages it has committed.
        x_echo_count: Echoes counted for the first message (single model).
        y_echo_count: Echoes counted for the second message (single model).
    """

    phase: str = "idle"
    committed: frozenset = frozenset()
    x_echo_count: int = 0
    y_echo_count: int = 0


@dataclass(frozen=True)
class HonestReceiverState(LocalState):
    """Local state of an honest receiver.

    Attributes:
        echoed: ``(initiator, value)`` pairs this receiver has echoed; an
            honest receiver echoes at most once per initiator.
        delivered: ``(initiator, value)`` pairs this receiver has delivered;
            at most one per initiator.
    """

    echoed: frozenset = frozenset()
    delivered: frozenset = frozenset()


@dataclass(frozen=True)
class ByzantineReceiverState(LocalState):
    """Local state of a Byzantine receiver (it needs no bookkeeping)."""

    marker: str = "byzantine"
