"""Byzantine attack behaviours for the Echo Multicast models.

The paper models specific attack strategies rather than fully general
Byzantine behaviour (Section V-A, "Process faults"):

* a **Byzantine initiator** equivocates — it sends one message to one group
  of honest receivers and a different message to the other group (plus both
  to every Byzantine receiver), then tries to commit both;
* a **Byzantine receiver** sends invalid confirmations to honest initiators
  and cooperates with Byzantine initiators by echoing (signing) both of
  their conflicting messages.

Because commits are only possible with a full echo quorum (cryptographic
signatures make echoes unforgeable, which the model inherits by simply not
giving Byzantine processes a way to fabricate them), the attack succeeds
only when the number of Byzantine receivers exceeds the assumed threshold.
"""

from __future__ import annotations

from typing import Tuple

from ...mp.transition import ActionContext
from .config import ByzantineInitiatorState, ByzantineReceiverState, MulticastConfig


# --------------------------------------------------------------------------- #
# Byzantine initiator
# --------------------------------------------------------------------------- #
def byz_start_guard(local: ByzantineInitiatorState, _messages) -> bool:
    return local.phase == "idle"


def make_byz_start_action(config: MulticastConfig, initiator: str):
    """Equivocation kick-off: different INIT messages to the two groups."""
    value_x, value_y = config.equivocation_values(initiator)
    group_x, group_y = config.equivocation_groups()
    byz_receivers = config.byzantine_receiver_ids()

    def action(local: ByzantineInitiatorState, _messages, ctx: ActionContext):
        for receiver in group_x:
            ctx.send(receiver, "INIT", value=value_x)
        for receiver in group_y:
            ctx.send(receiver, "INIT", value=value_y)
        for receiver in byz_receivers:
            ctx.send(receiver, "INIT", value=value_x)
            ctx.send(receiver, "INIT", value=value_y)
        return local.update(phase="active")

    return action


def make_byz_echo_guard(value: str, label: str):
    """Quorum guard: every echo confirms ``value`` and it was not committed yet."""

    def guard(local: ByzantineInitiatorState, messages) -> bool:
        if local.phase != "active" or label in local.committed:
            return False
        return all(message["value"] == value for message in messages)

    return guard


def make_byz_commit_action(config: MulticastConfig, value: str, label: str):
    """Commit ``value`` to every honest receiver once a full echo quorum is held."""
    honest_receivers = config.honest_receiver_ids()

    def action(local: ByzantineInitiatorState, _messages, ctx: ActionContext):
        for receiver in honest_receivers:
            ctx.send(receiver, "COMMIT", value=value)
        return local.update(committed=local.committed | {label})

    return action


def make_byz_echo_single_action(config: MulticastConfig, initiator: str):
    """Single-message echo counting for the Byzantine initiator.

    Keeps one counter per conflicting message and commits a message once its
    counter reaches the echo quorum (Figure 3 pattern applied to the attack).
    """
    value_x, value_y = config.equivocation_values(initiator)
    quorum = config.echo_quorum
    honest_receivers = config.honest_receiver_ids()

    def action(local: ByzantineInitiatorState, messages, ctx: ActionContext):
        if local.phase != "active":
            return local
        (message,) = messages
        value = message["value"]
        if value == value_x and "X" not in local.committed:
            count = local.x_echo_count + 1
            if count >= quorum:
                for receiver in honest_receivers:
                    ctx.send(receiver, "COMMIT", value=value_x)
                return local.update(committed=local.committed | {"X"}, x_echo_count=0)
            return local.update(x_echo_count=count)
        if value == value_y and "Y" not in local.committed:
            count = local.y_echo_count + 1
            if count >= quorum:
                for receiver in honest_receivers:
                    ctx.send(receiver, "COMMIT", value=value_y)
                return local.update(committed=local.committed | {"Y"}, y_echo_count=0)
            return local.update(y_echo_count=count)
        return local

    return action


# --------------------------------------------------------------------------- #
# Byzantine receiver
# --------------------------------------------------------------------------- #
def make_byz_receiver_init_action(config: MulticastConfig):
    """Byzantine receiver INIT handling.

    Echo the received value faithfully when it came from a Byzantine
    initiator (cooperation: both conflicting messages get signed) and send a
    useless, invalid confirmation to honest initiators.
    """
    byzantine_initiators = frozenset(config.byzantine_initiator_ids())

    def action(local: ByzantineReceiverState, messages, ctx: ActionContext):
        (message,) = messages
        if message.sender in byzantine_initiators:
            ctx.send(message.sender, "ECHO", value=message["value"])
        else:
            ctx.send(message.sender, "ECHO", value=f"invalid[{ctx.process_id}]")
        return local

    return action


def partition_labels() -> Tuple[str, str]:
    """The two labels used for a Byzantine initiator's conflicting messages."""
    return ("X", "Y")
