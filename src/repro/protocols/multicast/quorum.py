"""Echo Multicast modelled with quorum transitions.

The echo-collection step of each initiator (honest or Byzantine) is a quorum
transition over the echo quorum computed in :class:`MulticastConfig`; the
receiver-side INIT and COMMIT handlers are single-message transitions.
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec, exact_quorum
from .byzantine import (
    byz_start_guard,
    make_byz_commit_action,
    make_byz_echo_guard,
    make_byz_receiver_init_action,
    make_byz_start_action,
)
from .config import (
    ByzantineInitiatorState,
    ByzantineReceiverState,
    HonestInitiatorState,
    HonestReceiverState,
    MulticastConfig,
)


# --------------------------------------------------------------------------- #
# Honest initiator
# --------------------------------------------------------------------------- #
def _mcast_guard(local: HonestInitiatorState, _messages) -> bool:
    return local.phase == "idle"


def _mcast_action(receiver_ids):
    """Honest initiator MCAST: send INIT with its message to every receiver."""

    def action(local: HonestInitiatorState, _messages, ctx: ActionContext):
        for receiver in receiver_ids:
            ctx.send(receiver, "INIT", value=local.value)
        return local.update(phase="collecting")

    return action


def _echo_guard(local: HonestInitiatorState, messages) -> bool:
    """A quorum of echoes counts only if every echo confirms the initiator's message."""
    if local.phase != "collecting":
        return False
    return all(message["value"] == local.value for message in messages)


def _echo_action(receiver_ids):
    """Honest initiator ECHO quorum: commit the message to every receiver."""

    def action(local: HonestInitiatorState, _messages, ctx: ActionContext):
        for receiver in receiver_ids:
            ctx.send(receiver, "COMMIT", value=local.value)
        return local.update(phase="committed")

    return action


# --------------------------------------------------------------------------- #
# Honest receiver
# --------------------------------------------------------------------------- #
def _init_action(local: HonestReceiverState, messages, ctx: ActionContext):
    """Honest receiver INIT: echo the first message seen from each initiator."""
    (message,) = messages
    initiator = message.sender
    if any(existing_initiator == initiator for existing_initiator, _ in local.echoed):
        return local
    ctx.send(initiator, "ECHO", value=message["value"])
    return local.update(echoed=local.echoed | {(initiator, message["value"])})


def _commit_action(local: HonestReceiverState, messages, _ctx: ActionContext):
    """Honest receiver COMMIT: deliver the first committed message per initiator."""
    (message,) = messages
    initiator = message.sender
    if any(existing_initiator == initiator for existing_initiator, _ in local.delivered):
        return local
    return local.update(delivered=local.delivered | {(initiator, message["value"])})


def _drop_action(local: HonestReceiverState, _messages, _ctx: ActionContext):
    """Lossy channel: consume the message without handling it."""
    return local


def add_receiver_loss_transitions(builder, honest_receivers, initiator_set) -> None:
    """Message-loss fault model: per-receiver drop transitions.

    For every honest receiver, every pending INIT or COMMIT gains a second
    enabled execution that consumes the message without effect — the
    channel dropped it.  Declared ``visible`` so the stubborn-set
    reductions never prune a drop against its handling twin (loss is a
    fault occurrence, conservatively treated like any other observable
    event).
    """
    for pid in honest_receivers:
        for message_type in ("INIT", "COMMIT"):
            builder.add_transition(
                name=f"DROP_{message_type}@{pid}",
                process_id=pid,
                message_type=message_type,
                action=_drop_action,
                annotation=LporAnnotation(
                    possible_senders=initiator_set,
                    visible=True,
                    priority=2,
                ),
            )


def build_multicast_quorum(config: MulticastConfig) -> Protocol:
    """Build the quorum-transition Echo Multicast model for a setting."""
    builder = ProtocolBuilder(f"echo multicast {config.setting_label} quorum")
    honest_receivers = config.honest_receiver_ids()
    byz_receivers = config.byzantine_receiver_ids()
    receivers = config.receiver_ids()
    honest_initiators = config.honest_initiator_ids()
    byz_initiators = config.byzantine_initiator_ids()
    initiators = config.initiator_ids()
    receiver_set = frozenset(receivers)
    initiator_set = frozenset(initiators)
    quorum = config.echo_quorum

    for pid in honest_initiators:
        builder.add_process(pid, "initiator", HonestInitiatorState(value=config.honest_value(pid)))
    for pid in byz_initiators:
        builder.add_process(pid, "byz_initiator", ByzantineInitiatorState())
    for pid in honest_receivers:
        builder.add_process(pid, "receiver", HonestReceiverState())
    for pid in byz_receivers:
        builder.add_process(pid, "byz_receiver", ByzantineReceiverState())

    # Honest initiators ------------------------------------------------------
    for pid in honest_initiators:
        builder.add_transition(
            name=f"MCAST@{pid}",
            process_id=pid,
            message_type="MCAST",
            guard=_mcast_guard,
            action=_mcast_action(receivers),
            annotation=LporAnnotation(
                sends=(SendSpec("INIT", recipients=receiver_set),),
                possible_senders=frozenset({DRIVER}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"ECHO@{pid}",
            process_id=pid,
            message_type="ECHO",
            quorum=exact_quorum(quorum),
            guard=_echo_guard,
            action=_echo_action(receivers),
            annotation=LporAnnotation(
                sends=(SendSpec("COMMIT", recipients=receiver_set),),
                possible_senders=receiver_set,
                priority=1,
            ),
        )
        builder.trigger("MCAST", pid)

    # Byzantine initiators ----------------------------------------------------
    for pid in byz_initiators:
        value_x, value_y = config.equivocation_values(pid)
        builder.add_transition(
            name=f"B_MCAST@{pid}",
            process_id=pid,
            message_type="B_MCAST",
            guard=byz_start_guard,
            action=make_byz_start_action(config, pid),
            annotation=LporAnnotation(
                sends=(SendSpec("INIT", recipients=receiver_set),),
                possible_senders=frozenset({DRIVER}),
                starts_instance=True,
                priority=3,
            ),
        )
        for label, value in (("X", value_x), ("Y", value_y)):
            builder.add_transition(
                name=f"ECHO_{label}@{pid}",
                process_id=pid,
                message_type="ECHO",
                quorum=exact_quorum(quorum),
                guard=make_byz_echo_guard(value, label),
                action=make_byz_commit_action(config, value, label),
                annotation=LporAnnotation(
                    sends=(SendSpec("COMMIT", recipients=frozenset(honest_receivers)),),
                    possible_senders=receiver_set,
                    priority=1,
                ),
            )
        builder.trigger("B_MCAST", pid)

    # Honest receivers ----------------------------------------------------------
    for pid in honest_receivers:
        builder.add_transition(
            name=f"INIT@{pid}",
            process_id=pid,
            message_type="INIT",
            action=_init_action,
            annotation=LporAnnotation(
                sends=(SendSpec("ECHO", to_senders_only=True),),
                possible_senders=initiator_set,
                is_reply=True,
                priority=2,
            ),
        )
        builder.add_transition(
            name=f"COMMIT@{pid}",
            process_id=pid,
            message_type="COMMIT",
            action=_commit_action,
            annotation=LporAnnotation(
                possible_senders=initiator_set,
                visible=True,
                finishes_instance=True,
                priority=0,
            ),
        )

    # Byzantine receivers ---------------------------------------------------------
    for pid in byz_receivers:
        builder.add_transition(
            name=f"INIT@{pid}",
            process_id=pid,
            message_type="INIT",
            action=make_byz_receiver_init_action(config),
            annotation=LporAnnotation(
                sends=(SendSpec("ECHO", to_senders_only=True),),
                possible_senders=initiator_set,
                is_reply=True,
                priority=2,
            ),
        )

    if config.message_loss:
        add_receiver_loss_transitions(builder, honest_receivers, initiator_set)

    builder.set_metadata(
        protocol="echo multicast",
        model="quorum",
        setting=config.setting_label,
        echo_quorum=quorum,
        assumed_faults=config.assumed_faults,
        exceeds_threshold=config.exceeds_threshold,
        message_loss=config.message_loss,
    )
    return builder.build()


__all__ = ["add_receiver_loss_transitions", "build_multicast_quorum"]
