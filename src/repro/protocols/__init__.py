"""Fault-tolerant protocol models used in the paper's evaluation.

Four protocol families, each in a quorum-transition and a single-message
variant: Paxos consensus, a single-writer regular storage protocol, Echo
Multicast with explicit Byzantine attack behaviours, and a crash-recovery
storage protocol (the cyclic family, carrying liveness properties), plus a
catalog that wires instances and properties together for the benchmarks.
"""

from .catalog import (
    CatalogEntry,
    crash_recovery_entry,
    default_catalog,
    entry_by_key,
    multicast_entry,
    paxos_entry,
    storage_entry,
)
from .crashrecovery import (
    CrashRecoveryConfig,
    build_crash_recovery_quorum,
    build_crash_recovery_single,
    durability_invariant,
    eventually_done,
    eventually_progress,
)
from .multicast import MulticastConfig, agreement_invariant, build_multicast_quorum, build_multicast_single
from .paxos import (
    PaxosConfig,
    build_faulty_paxos_quorum,
    build_faulty_paxos_single,
    build_paxos_quorum,
    build_paxos_single,
    consensus_invariant,
)
from .storage import (
    StorageConfig,
    build_storage_quorum,
    build_storage_single,
    regularity_invariant,
    wrong_regularity_invariant,
)

__all__ = [
    "CatalogEntry",
    "CrashRecoveryConfig",
    "MulticastConfig",
    "PaxosConfig",
    "StorageConfig",
    "agreement_invariant",
    "build_crash_recovery_quorum",
    "build_crash_recovery_single",
    "build_faulty_paxos_quorum",
    "build_faulty_paxos_single",
    "build_multicast_quorum",
    "build_multicast_single",
    "build_paxos_quorum",
    "build_paxos_single",
    "build_storage_quorum",
    "build_storage_single",
    "consensus_invariant",
    "crash_recovery_entry",
    "default_catalog",
    "durability_invariant",
    "entry_by_key",
    "eventually_done",
    "eventually_progress",
    "multicast_entry",
    "paxos_entry",
    "regularity_invariant",
    "storage_entry",
    "wrong_regularity_invariant",
]
