"""Properties of the crash-recovery storage models.

One invariant and two liveness properties:

* :func:`durability_invariant` — safety, holds in both models: a completed
  write implies a majority of replicas persisted the value (persistence is
  stable storage, so crashes cannot un-persist it).
* :func:`eventually_progress` — ◇(write done ∨ some replica crashed), holds:
  every cycle of the state graph goes through a crash, and every crash-free
  run is finite and can only stutter after the write completed... except it
  cannot stutter at all: a crash-prone replica always has CRASH or RECOVER
  armed, so the only accepting cycles would need ``ever_crashed`` to stay
  false around a crash — impossible.
* :func:`eventually_done` — ◇(write done), violated: the crash/recover pair
  can spin forever while every STORE message stays in flight, a genuine
  lasso-shaped counterexample (stem into the loop, crash→recover cycle).
"""

from __future__ import annotations

from ...checker.property import Eventually, Invariant
from ...mp.protocol import Protocol
from ...mp.state import GlobalState


def _write_done(state: GlobalState, protocol: Protocol) -> bool:
    for writer in protocol.processes_of_type("writer"):
        if state.local(writer.pid).phase != "done":
            return False
    return True


def _any_crashed(state: GlobalState, protocol: Protocol) -> bool:
    return any(
        state.local(replica.pid).ever_crashed
        for replica in protocol.processes_of_type("replica")
    )


def durability_invariant() -> Invariant:
    """A completed write implies a majority of replicas persisted the value."""

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        if not _write_done(state, protocol):
            return True
        replicas = protocol.processes_of_type("replica")
        stored = sum(1 for replica in replicas if state.local(replica.pid).stored)
        majority = protocol.metadata.get("majority", len(replicas) // 2 + 1)
        return stored >= majority

    return Invariant(
        name="durability",
        predicate=predicate,
        network_sensitive=False,
        description=(
            "once the write completed, a majority of replicas hold the value "
            "in stable storage"
        ),
    )


def eventually_progress() -> Eventually:
    """◇(write done ∨ some replica ever crashed) — holds in both models."""

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        return _write_done(state, protocol) or _any_crashed(state, protocol)

    return Eventually(
        name="eventually-progress",
        predicate=predicate,
        network_sensitive=False,
        description=(
            "every run eventually completes the write or observes a crash"
        ),
    )


def eventually_done() -> Eventually:
    """◇(write done) — violated: the crash/recover loop can starve the write."""

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        return _write_done(state, protocol)

    return Eventually(
        name="eventually-done",
        predicate=predicate,
        network_sensitive=False,
        description=(
            "(deliberately too strong under unfair scheduling) every run "
            "eventually completes the write"
        ),
    )


__all__ = [
    "durability_invariant",
    "eventually_done",
    "eventually_progress",
]
