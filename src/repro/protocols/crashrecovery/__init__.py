"""Crash-recovery storage models — the first cyclic protocol family.

A single-writer durable store over crash-*recovery* replicas, in
quorum-transition and single-message variants.  The crash/recover transition
pair re-arms its own triggers, so the state graph contains genuine cycles;
the builders declare ``cyclic_state_graph=True`` metadata, which gates the
reductions that are only sound on acyclic graphs.  Ships a durability
invariant plus two liveness (:class:`~repro.checker.property.Eventually`)
properties — one that holds and one violated by a crash/recover lasso.
"""

from .config import (
    STORED_VALUE,
    CrWriterState,
    CrashRecoveryConfig,
    ReplicaState,
)
from .properties import (
    durability_invariant,
    eventually_done,
    eventually_progress,
)
from .quorum import build_crash_recovery_quorum
from .single import build_crash_recovery_single

__all__ = [
    "CrWriterState",
    "CrashRecoveryConfig",
    "ReplicaState",
    "STORED_VALUE",
    "build_crash_recovery_quorum",
    "build_crash_recovery_single",
    "durability_invariant",
    "eventually_done",
    "eventually_progress",
]
