"""Crash-recovery storage modelled with single-message transitions only.

Quorum collection is simulated with a per-message counting transition, as in
the "no quorum" baseline models: the writer counts STORE_ACK messages one at
a time and completes once the counter reaches the majority threshold.  The
crash/recover machinery is identical to the quorum model.
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec
from .config import CrWriterState, CrashRecoveryConfig, ReplicaState
from .quorum import (
    _add_crash_recover,
    _store_action,
    _store_guard,
    _write_start_action,
    _write_start_guard,
)


def _store_ack_single_action(majority: int):
    """Writer STORE_ACK, one acknowledgement at a time."""

    def action(local: CrWriterState, _messages, _ctx: ActionContext) -> CrWriterState:
        if local.phase != "writing":
            return local
        count = local.ack_count + 1
        if count >= majority:
            return local.update(phase="done", ack_count=0)
        return local.update(ack_count=count)

    return action


def build_crash_recovery_single(config: CrashRecoveryConfig) -> Protocol:
    """Build the single-message ("no quorum") crash-recovery storage model."""
    builder = ProtocolBuilder(
        f"crash-recovery storage {config.setting_label} single-message"
    )
    writer = config.writer_id()
    replicas = config.replica_ids()
    replica_set = frozenset(replicas)
    writer_set = frozenset({writer})

    builder.add_process(writer, "writer", CrWriterState())
    for pid in replicas:
        builder.add_process(pid, "replica", ReplicaState())

    builder.add_transition(
        name=f"WRITE_START@{writer}",
        process_id=writer,
        message_type="WRITE_START",
        guard=_write_start_guard,
        action=_write_start_action(replicas),
        annotation=LporAnnotation(
            sends=(SendSpec("STORE", recipients=replica_set),),
            possible_senders=frozenset({DRIVER}),
            starts_instance=True,
            priority=3,
        ),
    )
    builder.add_transition(
        name=f"STORE_ACK@{writer}",
        process_id=writer,
        message_type="STORE_ACK",
        action=_store_ack_single_action(config.majority),
        annotation=LporAnnotation(
            possible_senders=replica_set,
            visible=True,
            finishes_instance=True,
            priority=1,
        ),
    )
    builder.trigger("WRITE_START", writer)

    for pid in replicas:
        builder.add_transition(
            name=f"STORE@{pid}",
            process_id=pid,
            message_type="STORE",
            guard=_store_guard,
            action=_store_action,
            annotation=LporAnnotation(
                sends=(SendSpec("STORE_ACK", to_senders_only=True),),
                possible_senders=writer_set,
                is_reply=True,
                priority=2,
            ),
        )
    for pid in config.crash_prone_ids():
        _add_crash_recover(builder, pid)

    builder.set_metadata(
        protocol="crash-recovery storage",
        model="single",
        setting=config.setting_label,
        majority=config.majority,
        cyclic_state_graph=True,
    )
    return builder.build()


__all__ = ["build_crash_recovery_single"]
