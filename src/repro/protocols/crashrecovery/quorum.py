"""Crash-recovery storage modelled with quorum transitions.

The writer stores the value at every replica and completes once a majority
acknowledged (one quorum transition).  Each crash-prone replica carries a
crash/recover transition pair whose actions re-arm each other's trigger
message: CRASH consumes its trigger and sends RECOVER to itself, RECOVER
consumes that and sends CRASH back.  Exactly one of the two is always
pending, so the pair never deadlocks and the state graph contains genuine
cycles (crash → recover → crash revisits the pre-crash state whenever
nothing else moved in between, modulo the sticky ``ever_crashed`` flag —
after the first crash the cycle is exact).
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec, exact_quorum
from .config import (
    STORED_VALUE,
    CrWriterState,
    CrashRecoveryConfig,
    ReplicaState,
)


def _write_start_action(replica_ids):
    """Writer WRITE_START: send the value to every replica."""

    def action(local: CrWriterState, _messages, ctx: ActionContext) -> CrWriterState:
        for replica in replica_ids:
            ctx.send(replica, "STORE", value=STORED_VALUE)
        return local.update(phase="writing")

    return action


def _write_start_guard(local: CrWriterState, _messages) -> bool:
    return local.phase == "idle"


def _store_guard(local: ReplicaState, _messages) -> bool:
    return local.up


def _store_action(local: ReplicaState, messages, ctx: ActionContext) -> ReplicaState:
    """Replica STORE: persist to stable storage, then acknowledge."""
    (message,) = messages
    ctx.send(message.sender, "STORE_ACK")
    return local.update(stored=True)


def _store_ack_guard(local: CrWriterState, _messages) -> bool:
    return local.phase == "writing"


def _store_ack_action(local: CrWriterState, _messages, _ctx: ActionContext) -> CrWriterState:
    """Writer STORE_ACK quorum: the write operation completes."""
    return local.update(phase="done")


def _crash_guard(local: ReplicaState, _messages) -> bool:
    return local.up


def _crash_action(pid: str):
    """Replica CRASH: go down and arm the matching RECOVER trigger."""

    def action(local: ReplicaState, _messages, ctx: ActionContext) -> ReplicaState:
        ctx.send(pid, "RECOVER")
        return local.update(up=False, ever_crashed=True)

    return action


def _recover_guard(local: ReplicaState, _messages) -> bool:
    return not local.up

def _recover_action(pid: str):
    """Replica RECOVER: come back up and re-arm the CRASH trigger.

    Re-arming the consumed trigger is what makes the state graph cyclic:
    every other transition in the repository's protocols strictly consumes
    its trigger message, which is why their state graphs are acyclic.
    """

    def action(local: ReplicaState, _messages, ctx: ActionContext) -> ReplicaState:
        ctx.send(pid, "CRASH")
        return local.update(up=True)

    return action


def _add_crash_recover(builder: ProtocolBuilder, pid: str) -> None:
    """Register the crash/recover pair (shared by both model variants)."""
    self_set = frozenset({pid})
    builder.add_transition(
        name=f"CRASH@{pid}",
        process_id=pid,
        message_type="CRASH",
        guard=_crash_guard,
        action=_crash_action(pid),
        annotation=LporAnnotation(
            sends=(SendSpec("RECOVER", recipients=self_set),),
            possible_senders=frozenset({DRIVER, pid}),
            priority=2,
        ),
    )
    builder.add_transition(
        name=f"RECOVER@{pid}",
        process_id=pid,
        message_type="RECOVER",
        guard=_recover_guard,
        action=_recover_action(pid),
        annotation=LporAnnotation(
            sends=(SendSpec("CRASH", recipients=self_set),),
            possible_senders=self_set,
            priority=2,
        ),
    )
    builder.trigger("CRASH", pid)


def build_crash_recovery_quorum(config: CrashRecoveryConfig) -> Protocol:
    """Build the quorum-transition crash-recovery storage model."""
    builder = ProtocolBuilder(
        f"crash-recovery storage {config.setting_label} quorum"
    )
    writer = config.writer_id()
    replicas = config.replica_ids()
    replica_set = frozenset(replicas)
    writer_set = frozenset({writer})

    builder.add_process(writer, "writer", CrWriterState())
    for pid in replicas:
        builder.add_process(pid, "replica", ReplicaState())

    # Writer ----------------------------------------------------------------
    builder.add_transition(
        name=f"WRITE_START@{writer}",
        process_id=writer,
        message_type="WRITE_START",
        guard=_write_start_guard,
        action=_write_start_action(replicas),
        annotation=LporAnnotation(
            sends=(SendSpec("STORE", recipients=replica_set),),
            possible_senders=frozenset({DRIVER}),
            starts_instance=True,
            priority=3,
        ),
    )
    builder.add_transition(
        name=f"STORE_ACK@{writer}",
        process_id=writer,
        message_type="STORE_ACK",
        quorum=exact_quorum(config.majority),
        guard=_store_ack_guard,
        action=_store_ack_action,
        annotation=LporAnnotation(
            possible_senders=replica_set,
            visible=True,
            finishes_instance=True,
            priority=1,
        ),
    )
    builder.trigger("WRITE_START", writer)

    # Replicas ----------------------------------------------------------------
    for pid in replicas:
        builder.add_transition(
            name=f"STORE@{pid}",
            process_id=pid,
            message_type="STORE",
            guard=_store_guard,
            action=_store_action,
            annotation=LporAnnotation(
                sends=(SendSpec("STORE_ACK", to_senders_only=True),),
                possible_senders=writer_set,
                is_reply=True,
                priority=2,
            ),
        )
    for pid in config.crash_prone_ids():
        _add_crash_recover(builder, pid)

    builder.set_metadata(
        protocol="crash-recovery storage",
        model="quorum",
        setting=config.setting_label,
        majority=config.majority,
        cyclic_state_graph=True,
    )
    return builder.build()


__all__ = ["build_crash_recovery_quorum"]
