"""Configuration and local states of the crash-recovery storage models.

The protocol is a single-writer durable store over crash-*recovery* replicas
(the crash-recovery failure model of the fault-tolerance literature, in
contrast to the crash-stop base objects of :mod:`repro.protocols.storage`):
one writer replicates a value to ``R`` replicas and completes once a
majority acknowledged, while the first ``F`` replicas may crash and later
recover, any number of times.

The recover transition *re-arms* the crash trigger it consumed (and vice
versa), so the crash/recover pair forms a genuine cycle in the state graph —
this is the repository's first cyclic protocol family, exercising the
cycle-aware stubborn-set proviso and the nested-DFS liveness engines.
Builders mark it with ``cyclic_state_graph=True`` metadata, which the
worksteal engines consult to refuse unsound reduced parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...mp.process import LocalState
from ...mp.transition import majority_of

#: The value replicated by the (single) write operation.
STORED_VALUE = "v1"


@dataclass(frozen=True)
class CrashRecoveryConfig:
    """A crash-recovery storage setting.

    Attributes:
        replicas: Number of storage replicas.
        crash_prone: How many of them (the first ``crash_prone``) may crash
            and recover.
    """

    replicas: int = 2
    crash_prone: int = 1

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("a crash-recovery setting needs at least one replica")
        if not (0 <= self.crash_prone <= self.replicas):
            raise ValueError(
                "crash_prone must be between 0 and the number of replicas"
            )

    @property
    def majority(self) -> int:
        """The replica majority threshold the write quorum collects."""
        return majority_of(self.replicas)

    @property
    def setting_label(self) -> str:
        """``(R,F)`` notation: replicas and crash-prone replicas."""
        return f"({self.replicas},{self.crash_prone})"

    def writer_id(self) -> str:
        return "writer"

    def replica_ids(self) -> Tuple[str, ...]:
        return tuple(f"rep{i + 1}" for i in range(self.replicas))

    def crash_prone_ids(self) -> Tuple[str, ...]:
        return self.replica_ids()[: self.crash_prone]


@dataclass(frozen=True)
class CrWriterState(LocalState):
    """Local state of the writer.

    Attributes:
        phase: ``"idle"`` before the write, ``"writing"`` while collecting
            acknowledgements, ``"done"`` once a majority acknowledged.
        ack_count: Acknowledgements counted so far (single-message model).
    """

    phase: str = "idle"
    ack_count: int = 0


@dataclass(frozen=True)
class ReplicaState(LocalState):
    """Local state of a replica.

    Attributes:
        up: Whether the replica is currently running.  A down replica
            processes no STORE messages until it recovers.
        stored: Whether the written value has been persisted.  Persistence
            survives crashes (stable storage).
        ever_crashed: Ghost flag — has this replica crashed at least once?
            Read by the liveness properties.
    """

    up: bool = True
    stored: bool = False
    ever_crashed: bool = False
