"""A small catalog of ready-made protocol instances and their properties.

The benchmark harness and the examples need to iterate over "rows" similar
to the paper's tables: a protocol instance, the property to check, and the
expected outcome.  The catalog centralises that wiring so the table
generators stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..checker.property import Eventually, Invariant
from ..mp.protocol import Protocol
from .crashrecovery import (
    CrashRecoveryConfig,
    build_crash_recovery_quorum,
    build_crash_recovery_single,
    durability_invariant,
    eventually_done,
    eventually_progress,
)
from .multicast import MulticastConfig, agreement_invariant, build_multicast_quorum, build_multicast_single
from .paxos import (
    PaxosConfig,
    build_faulty_paxos_quorum,
    build_faulty_paxos_single,
    build_paxos_quorum,
    build_paxos_single,
    consensus_invariant,
)
from .storage import (
    StorageConfig,
    build_storage_quorum,
    build_storage_single,
    regularity_invariant,
    wrong_regularity_invariant,
)


@dataclass(frozen=True)
class CatalogEntry:
    """One protocol/property workload of the evaluation.

    Attributes:
        key: Short unique identifier (used by benchmarks and the CLI-style
            examples).
        description: The paper-style row label, e.g. ``"Paxos (2,3,1)"``.
        quorum_model: Factory for the quorum-transition model.
        single_model: Factory for the single-message ("no quorum") model.
        invariant: The property to check.
        expect_violation: True if the paper reports a counterexample for
            this row (the debugging experiments).
        liveness: Optional :class:`Eventually` property for the liveness
            sweeps; ``None`` for the purely safety-checked workloads.
        expect_liveness_violation: True when the liveness property has an
            acceptance-cycle counterexample (a lasso).
    """

    key: str
    description: str
    quorum_model: Callable[[], Protocol]
    single_model: Callable[[], Protocol]
    invariant: Invariant
    expect_violation: bool
    liveness: Optional[Eventually] = None
    expect_liveness_violation: bool = False


def paxos_entry(
    proposers: int, acceptors: int, learners: int, faulty: bool = False
) -> CatalogEntry:
    """Catalog entry for a Paxos setting (optionally the faulty variant)."""
    config = PaxosConfig(proposers=proposers, acceptors=acceptors, learners=learners)
    label = "Faulty Paxos" if faulty else "Paxos"
    quorum_builder = build_faulty_paxos_quorum if faulty else build_paxos_quorum
    single_builder = build_faulty_paxos_single if faulty else build_paxos_single
    return CatalogEntry(
        key=f"{'faulty-' if faulty else ''}paxos-{proposers}-{acceptors}-{learners}",
        description=f"{label} {config.setting_label}",
        quorum_model=lambda: quorum_builder(config),
        single_model=lambda: single_builder(config),
        invariant=consensus_invariant(),
        expect_violation=faulty,
    )


def storage_entry(
    base_objects: int, readers: int, wrong_specification: bool = False
) -> CatalogEntry:
    """Catalog entry for a regular storage setting.

    With ``wrong_specification`` the deliberately too-strong property of
    Section V-A ("wrong regularity") is checked instead of regularity.
    """
    config = StorageConfig(base_objects=base_objects, readers=readers)
    invariant = wrong_regularity_invariant() if wrong_specification else regularity_invariant()
    return CatalogEntry(
        key=(
            f"storage-{base_objects}-{readers}"
            + ("-wrong" if wrong_specification else "")
        ),
        description=f"Regular storage {config.setting_label}",
        quorum_model=lambda: build_storage_quorum(config),
        single_model=lambda: build_storage_single(config),
        invariant=invariant,
        expect_violation=wrong_specification,
    )


def multicast_entry(
    honest_receivers: int,
    honest_initiators: int,
    byzantine_receivers: int,
    byzantine_initiators: int,
    message_loss: bool = False,
) -> CatalogEntry:
    """Catalog entry for an Echo Multicast setting.

    The expected outcome follows the configuration itself: agreement is
    violated exactly when the Byzantine receivers exceed the assumed
    threshold (the paper's "wrong agreement" settings).  ``message_loss``
    adds the lossy-channel fault model (droppable INIT/COMMIT messages);
    loss only removes deliveries, so the expectation formula is unchanged —
    it just multiplies the interleavings, which is the sampling-backend
    workload.
    """
    config = MulticastConfig(
        honest_receivers=honest_receivers,
        honest_initiators=honest_initiators,
        byzantine_receivers=byzantine_receivers,
        byzantine_initiators=byzantine_initiators,
        message_loss=message_loss,
    )
    return CatalogEntry(
        key=(
            "multicast-"
            f"{honest_receivers}-{honest_initiators}-"
            f"{byzantine_receivers}-{byzantine_initiators}"
            + ("-lossy" if message_loss else "")
        ),
        description=(
            f"Echo Multicast {config.setting_label}"
            + (" lossy" if message_loss else "")
        ),
        quorum_model=lambda: build_multicast_quorum(config),
        single_model=lambda: build_multicast_single(config),
        invariant=agreement_invariant(),
        expect_violation=config.exceeds_threshold and config.byzantine_initiators > 0,
    )


def crash_recovery_entry(
    replicas: int, crash_prone: int, starved: bool = False
) -> CatalogEntry:
    """Catalog entry for a crash-recovery storage setting (the cyclic family).

    The durability invariant holds in both variants.  The default liveness
    property ◇(done ∨ crashed) also holds; with ``starved`` the too-strong
    ◇done is checked instead, which the crash/recover loop violates with a
    lasso-shaped counterexample.
    """
    config = CrashRecoveryConfig(replicas=replicas, crash_prone=crash_prone)
    liveness = eventually_done() if starved else eventually_progress()
    return CatalogEntry(
        key=(
            f"crashrecovery-{replicas}-{crash_prone}"
            + ("-starved" if starved else "")
        ),
        description=f"Crash-recovery storage {config.setting_label}",
        quorum_model=lambda: build_crash_recovery_quorum(config),
        single_model=lambda: build_crash_recovery_single(config),
        invariant=durability_invariant(),
        expect_violation=False,
        liveness=liveness,
        expect_liveness_violation=starved,
    )


def default_catalog(scale: str = "small") -> Tuple[CatalogEntry, ...]:
    """The workloads used by the bundled benchmarks.

    Args:
        scale: ``"small"`` uses settings that explore in seconds on a laptop
            in pure Python; ``"paper"`` uses the settings of Tables I-II
            (several of which need many hours even in the original JVM
            implementation and are therefore only intended for long runs).
    """
    if scale == "paper":
        return (
            paxos_entry(2, 3, 1),
            paxos_entry(2, 3, 1, faulty=True),
            multicast_entry(3, 0, 1, 1),
            multicast_entry(2, 1, 0, 1),
            multicast_entry(2, 1, 2, 1),
            multicast_entry(2, 1, 0, 1, message_loss=True),
            multicast_entry(2, 1, 2, 1, message_loss=True),
            storage_entry(3, 1),
            storage_entry(3, 2, wrong_specification=True),
            crash_recovery_entry(2, 1),
            crash_recovery_entry(2, 1, starved=True),
        )
    if scale == "small":
        return (
            paxos_entry(2, 2, 1),
            paxos_entry(2, 3, 1, faulty=True),
            multicast_entry(3, 0, 1, 1),
            multicast_entry(2, 1, 0, 1),
            multicast_entry(2, 1, 2, 1),
            multicast_entry(2, 1, 0, 1, message_loss=True),
            multicast_entry(2, 1, 2, 1, message_loss=True),
            storage_entry(3, 1),
            storage_entry(3, 2, wrong_specification=True),
            crash_recovery_entry(2, 1),
            crash_recovery_entry(2, 1, starved=True),
        )
    raise ValueError(f"unknown catalog scale: {scale!r} (expected 'small' or 'paper')")


def entry_by_key(key: str, scale: str = "small") -> Optional[CatalogEntry]:
    """Look up a catalog entry by its key."""
    for entry in default_catalog(scale):
        if entry.key == key:
            return entry
    return None
