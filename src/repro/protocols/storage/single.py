"""Regular storage modelled with single-message transitions only.

Quorum collection is simulated with per-message counting transitions, as in
the paper's "no quorum" baseline models (Figure 3 pattern): the writer
counts STORE_ACK messages, the reader counts VAL messages while tracking the
highest timestamp seen, and the quorum's effect fires once the counter
reaches the majority threshold.
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec
from .config import (
    BaseObjectState,
    ReaderState,
    StorageConfig,
    WriterState,
)
from .quorum import (
    _get_action,
    _read_start_action,
    _read_start_guard,
    _store_action,
    _write_start_action,
    _write_start_guard,
)


def _store_ack_single_action(majority: int):
    """Writer STORE_ACK, one acknowledgement at a time."""

    def action(local: WriterState, _messages, _ctx: ActionContext) -> WriterState:
        if local.phase != "writing":
            return local
        count = local.ack_count + 1
        if count >= majority:
            return local.update(phase="done", ack_count=0)
        return local.update(ack_count=count)

    return action


def _val_single_action(majority: int, writer_id: str):
    """Reader VAL, one reply at a time, tracking the freshest value seen."""

    def action(local: ReaderState, messages, ctx: ActionContext) -> ReaderState:
        if local.phase != "reading":
            return local
        (message,) = messages
        count = local.val_count + 1
        highest_timestamp = local.highest_timestamp
        highest_value = local.highest_value
        if message["timestamp"] > highest_timestamp:
            highest_timestamp = message["timestamp"]
            highest_value = message["value"]
        if count >= majority:
            write_done = ctx.spec_read(writer_id).phase == "done"
            return local.update(
                phase="done",
                returned=highest_value,
                write_done_at_end=write_done,
                val_count=0,
                highest_timestamp=-1,
                highest_value=None,
            )
        return local.update(
            val_count=count,
            highest_timestamp=highest_timestamp,
            highest_value=highest_value,
        )

    return action


def build_storage_single(config: StorageConfig) -> Protocol:
    """Build the single-message ("no quorum") regular storage model."""
    builder = ProtocolBuilder(f"regular storage {config.setting_label} single-message")
    writer = config.writer_id()
    bases = config.base_ids()
    readers = config.reader_ids()
    base_set = frozenset(bases)
    writer_set = frozenset({writer})
    reader_set = frozenset(readers)

    builder.add_process(writer, "writer", WriterState())
    for pid in bases:
        builder.add_process(pid, "base", BaseObjectState())
    for pid in readers:
        builder.add_process(pid, "reader", ReaderState())

    builder.add_transition(
        name=f"WRITE_START@{writer}",
        process_id=writer,
        message_type="WRITE_START",
        guard=_write_start_guard,
        action=_write_start_action(bases),
        annotation=LporAnnotation(
            sends=(SendSpec("STORE", recipients=base_set),),
            possible_senders=frozenset({DRIVER}),
            starts_instance=True,
            priority=3,
        ),
    )
    builder.add_transition(
        name=f"STORE_ACK@{writer}",
        process_id=writer,
        message_type="STORE_ACK",
        action=_store_ack_single_action(config.majority),
        annotation=LporAnnotation(
            possible_senders=base_set,
            finishes_instance=True,
            priority=1,
        ),
    )
    builder.trigger("WRITE_START", writer)

    for pid in bases:
        builder.add_transition(
            name=f"STORE@{pid}",
            process_id=pid,
            message_type="STORE",
            action=_store_action,
            annotation=LporAnnotation(
                sends=(SendSpec("STORE_ACK", to_senders_only=True),),
                possible_senders=writer_set,
                is_reply=True,
                priority=2,
            ),
        )
        builder.add_transition(
            name=f"GET@{pid}",
            process_id=pid,
            message_type="GET",
            action=_get_action,
            annotation=LporAnnotation(
                sends=(SendSpec("VAL", to_senders_only=True),),
                possible_senders=reader_set,
                is_reply=True,
                priority=2,
            ),
        )

    for pid in readers:
        builder.add_transition(
            name=f"READ_START@{pid}",
            process_id=pid,
            message_type="READ_START",
            guard=_read_start_guard,
            action=_read_start_action(bases, writer),
            annotation=LporAnnotation(
                sends=(SendSpec("GET", recipients=base_set),),
                possible_senders=frozenset({DRIVER}),
                spec_reads=frozenset({writer}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"VAL@{pid}",
            process_id=pid,
            message_type="VAL",
            action=_val_single_action(config.majority, writer),
            annotation=LporAnnotation(
                possible_senders=base_set,
                spec_reads=frozenset({writer}),
                visible=True,
                finishes_instance=True,
                priority=0,
            ),
        )
        builder.trigger("READ_START", pid)

    builder.set_metadata(
        protocol="regular storage",
        model="single-message",
        setting=config.setting_label,
        majority=config.majority,
    )
    return builder.build()


__all__ = ["build_storage_single"]
