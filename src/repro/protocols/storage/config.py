"""Configuration and local states of the regular storage models.

The protocol is a message-based single-writer regular register in the style
of Attiya, Bar-Noy and Dolev (reference [3] of the paper): one writer, a set
of crash-prone base objects that store timestamp/value pairs, and one or
more readers.  A storage setting ``(B, R)`` gives the number of base objects
and readers (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...mp.process import LocalState
from ...mp.transition import majority_of

#: The register's initial value (timestamp 0).
INITIAL_VALUE = "v0"
#: The value written by the (single) write operation (timestamp 1).
WRITTEN_VALUE = "v1"


@dataclass(frozen=True)
class StorageConfig:
    """A regular storage setting.

    Attributes:
        base_objects: Number of base (storing) objects.
        readers: Number of reader processes.
    """

    base_objects: int = 3
    readers: int = 1

    def __post_init__(self) -> None:
        if self.base_objects < 1 or self.readers < 1:
            raise ValueError("a storage setting needs at least one base object and one reader")

    @property
    def majority(self) -> int:
        """The base-object majority threshold used by write and read quorums."""
        return majority_of(self.base_objects)

    @property
    def setting_label(self) -> str:
        """The paper's ``(B,R)`` notation."""
        return f"({self.base_objects},{self.readers})"

    def writer_id(self) -> str:
        return "writer"

    def base_ids(self) -> Tuple[str, ...]:
        return tuple(f"base{i + 1}" for i in range(self.base_objects))

    def reader_ids(self) -> Tuple[str, ...]:
        return tuple(f"reader{i + 1}" for i in range(self.readers))


@dataclass(frozen=True)
class WriterState(LocalState):
    """Local state of the single writer.

    Attributes:
        phase: ``"idle"`` before the write, ``"writing"`` while collecting
            acknowledgements, ``"done"`` once a majority acknowledged.
        ack_count: Acknowledgements counted so far (single-message model).
    """

    phase: str = "idle"
    ack_count: int = 0


@dataclass(frozen=True)
class BaseObjectState(LocalState):
    """Local state of a base object: the stored timestamp/value pair."""

    timestamp: int = 0
    value: str = INITIAL_VALUE


@dataclass(frozen=True)
class ReaderState(LocalState):
    """Local state of a reader.

    Attributes:
        phase: ``"idle"`` / ``"reading"`` / ``"done"``.
        returned: The value returned by the completed read, if any.
        write_done_at_start: Ghost snapshot — was the write already complete
            when the read started?  Used by the regularity property.
        write_done_at_end: Ghost snapshot — was the write complete when the
            read completed?  Used by the deliberately wrong property.
        val_count: Replies counted so far (single-message model).
        highest_timestamp: Highest timestamp among counted replies
            (single-message model).
        highest_value: Value of ``highest_timestamp`` (single-message model).
    """

    phase: str = "idle"
    returned: Optional[str] = None
    write_done_at_start: bool = False
    write_done_at_end: bool = False
    val_count: int = 0
    highest_timestamp: int = -1
    highest_value: Optional[str] = None
