"""Regular storage modelled with quorum transitions.

The write operation stores the new timestamp/value pair at every base object
and completes once a majority acknowledged; a read queries every base object
and returns the value with the highest timestamp among a majority of
replies.  The two majority-collection events are quorum transitions.

The regularity property needs to relate operation intervals ("a read that
starts after the write completed must return the written value").  Following
the paper's footnote-7 device, the reader takes specification-only snapshots
of the writer's completion flag when the read starts and when it completes;
both snapshots are declared in ``spec_reads`` so the partial-order reduction
treats the snapshotting transitions as dependent on the writer's.
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec, exact_quorum
from .config import (
    WRITTEN_VALUE,
    BaseObjectState,
    ReaderState,
    StorageConfig,
    WriterState,
)


def _write_start_action(base_ids):
    """Writer WRITE_START: send the new pair to every base object."""

    def action(local: WriterState, _messages, ctx: ActionContext) -> WriterState:
        for base in base_ids:
            ctx.send(base, "STORE", timestamp=1, value=WRITTEN_VALUE)
        return local.update(phase="writing")

    return action


def _write_start_guard(local: WriterState, _messages) -> bool:
    return local.phase == "idle"


def _store_action(local: BaseObjectState, messages, ctx: ActionContext) -> BaseObjectState:
    """Base STORE: adopt the pair if newer, always acknowledge."""
    (message,) = messages
    timestamp = message["timestamp"]
    ctx.send(message.sender, "STORE_ACK", timestamp=timestamp)
    if timestamp > local.timestamp:
        return local.update(timestamp=timestamp, value=message["value"])
    return local


def _store_ack_guard(local: WriterState, _messages) -> bool:
    return local.phase == "writing"


def _store_ack_action(local: WriterState, _messages, _ctx: ActionContext) -> WriterState:
    """Writer STORE_ACK quorum: the write operation completes."""
    return local.update(phase="done")


def _read_start_action(base_ids, writer_id: str):
    """Reader READ_START: snapshot the writer's progress and query all bases."""

    def action(local: ReaderState, _messages, ctx: ActionContext) -> ReaderState:
        write_done = ctx.spec_read(writer_id).phase == "done"
        for base in base_ids:
            ctx.send(base, "GET")
        return local.update(phase="reading", write_done_at_start=write_done)

    return action


def _read_start_guard(local: ReaderState, _messages) -> bool:
    return local.phase == "idle"


def _get_action(local: BaseObjectState, messages, ctx: ActionContext) -> BaseObjectState:
    """Base GET: reply with the stored pair."""
    (message,) = messages
    ctx.send(message.sender, "VAL", timestamp=local.timestamp, value=local.value)
    return local


def _val_guard(local: ReaderState, _messages) -> bool:
    return local.phase == "reading"


def _val_action(writer_id: str):
    """Reader VAL quorum: return the freshest value among a majority of replies."""

    def action(local: ReaderState, messages, ctx: ActionContext) -> ReaderState:
        best_timestamp = -1
        best_value = None
        for message in messages:
            if message["timestamp"] > best_timestamp:
                best_timestamp = message["timestamp"]
                best_value = message["value"]
        write_done = ctx.spec_read(writer_id).phase == "done"
        return local.update(
            phase="done",
            returned=best_value,
            write_done_at_end=write_done,
        )

    return action


def build_storage_quorum(config: StorageConfig) -> Protocol:
    """Build the quorum-transition regular storage model for a setting."""
    builder = ProtocolBuilder(f"regular storage {config.setting_label} quorum")
    writer = config.writer_id()
    bases = config.base_ids()
    readers = config.reader_ids()
    base_set = frozenset(bases)
    writer_set = frozenset({writer})
    reader_set = frozenset(readers)

    builder.add_process(writer, "writer", WriterState())
    for pid in bases:
        builder.add_process(pid, "base", BaseObjectState())
    for pid in readers:
        builder.add_process(pid, "reader", ReaderState())

    # Writer ----------------------------------------------------------------
    builder.add_transition(
        name=f"WRITE_START@{writer}",
        process_id=writer,
        message_type="WRITE_START",
        guard=_write_start_guard,
        action=_write_start_action(bases),
        annotation=LporAnnotation(
            sends=(SendSpec("STORE", recipients=base_set),),
            possible_senders=frozenset({DRIVER}),
            starts_instance=True,
            priority=3,
        ),
    )
    builder.add_transition(
        name=f"STORE_ACK@{writer}",
        process_id=writer,
        message_type="STORE_ACK",
        quorum=exact_quorum(config.majority),
        guard=_store_ack_guard,
        action=_store_ack_action,
        annotation=LporAnnotation(
            possible_senders=base_set,
            finishes_instance=True,
            priority=1,
        ),
    )
    builder.trigger("WRITE_START", writer)

    # Base objects ------------------------------------------------------------
    for pid in bases:
        builder.add_transition(
            name=f"STORE@{pid}",
            process_id=pid,
            message_type="STORE",
            action=_store_action,
            annotation=LporAnnotation(
                sends=(SendSpec("STORE_ACK", to_senders_only=True),),
                possible_senders=writer_set,
                is_reply=True,
                priority=2,
            ),
        )
        builder.add_transition(
            name=f"GET@{pid}",
            process_id=pid,
            message_type="GET",
            action=_get_action,
            annotation=LporAnnotation(
                sends=(SendSpec("VAL", to_senders_only=True),),
                possible_senders=reader_set,
                is_reply=True,
                priority=2,
            ),
        )

    # Readers ------------------------------------------------------------------
    for pid in readers:
        builder.add_transition(
            name=f"READ_START@{pid}",
            process_id=pid,
            message_type="READ_START",
            guard=_read_start_guard,
            action=_read_start_action(bases, writer),
            annotation=LporAnnotation(
                sends=(SendSpec("GET", recipients=base_set),),
                possible_senders=frozenset({DRIVER}),
                spec_reads=frozenset({writer}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"VAL@{pid}",
            process_id=pid,
            message_type="VAL",
            quorum=exact_quorum(config.majority),
            guard=_val_guard,
            action=_val_action(writer),
            annotation=LporAnnotation(
                possible_senders=base_set,
                spec_reads=frozenset({writer}),
                visible=True,
                finishes_instance=True,
                priority=0,
            ),
        )
        builder.trigger("READ_START", pid)

    builder.set_metadata(
        protocol="regular storage",
        model="quorum",
        setting=config.setting_label,
        majority=config.majority,
    )
    return builder.build()


__all__ = ["build_storage_quorum"]
