"""Properties of the regular storage models."""

from __future__ import annotations

from ...checker.property import Invariant
from ...mp.protocol import Protocol
from ...mp.state import GlobalState
from .config import INITIAL_VALUE, WRITTEN_VALUE


def regularity_invariant() -> Invariant:
    """Regularity of the single-writer register.

    A completed read returns either the initial value or the written value,
    and a read that *started after the write completed* must return the
    written value.  The "started after the write completed" relation is
    evaluated from the ghost snapshot the reader took when the read started.
    """

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        for reader in protocol.processes_of_type("reader"):
            local = state.local(reader.pid)
            if local.phase != "done":
                continue
            if local.returned not in (INITIAL_VALUE, WRITTEN_VALUE):
                return False
            if local.write_done_at_start and local.returned != WRITTEN_VALUE:
                return False
        return True

    return Invariant(
        name="regularity",
        predicate=predicate,
        network_sensitive=False,
        description=(
            "a completed read returns a value not older than the latest write "
            "that completed before the read started"
        ),
    )


def wrong_regularity_invariant() -> Invariant:
    """The deliberately wrong specification of Section V-A.

    It requires a read that completes after the write completed to return
    the written value *even if the two operations were concurrent*.  The
    protocol does not guarantee this, so the model checker should find a
    counterexample ("wrong regularity" rows of Tables I and II).
    """

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        for reader in protocol.processes_of_type("reader"):
            local = state.local(reader.pid)
            if local.phase != "done":
                continue
            if local.write_done_at_end and local.returned != WRITTEN_VALUE:
                return False
        return True

    return Invariant(
        name="wrong-regularity",
        predicate=predicate,
        network_sensitive=False,
        description=(
            "(deliberately too strong) a read completing after the write must "
            "return the written value even when the operations overlap"
        ),
    )


def base_object_monotonicity() -> Invariant:
    """Base objects never regress to an older timestamp (model sanity check)."""

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        for base in protocol.processes_of_type("base"):
            local = state.local(base.pid)
            if local.timestamp == 0 and local.value != INITIAL_VALUE:
                return False
            if local.timestamp == 1 and local.value != WRITTEN_VALUE:
                return False
        return True

    return Invariant(
        name="base-monotonicity",
        predicate=predicate,
        network_sensitive=False,
        description="each base object's stored value matches its stored timestamp",
    )


__all__ = [
    "base_object_monotonicity",
    "regularity_invariant",
    "wrong_regularity_invariant",
]
