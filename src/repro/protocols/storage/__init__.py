"""Regular storage models (Section V-A of the paper).

A message-based single-writer regular register over crash-prone base
objects, in quorum-transition and single-message variants, together with the
regularity invariant and the deliberately wrong specification used for the
debugging experiments.
"""

from .config import (
    INITIAL_VALUE,
    WRITTEN_VALUE,
    BaseObjectState,
    ReaderState,
    StorageConfig,
    WriterState,
)
from .properties import (
    base_object_monotonicity,
    regularity_invariant,
    wrong_regularity_invariant,
)
from .quorum import build_storage_quorum
from .single import build_storage_single

__all__ = [
    "BaseObjectState",
    "INITIAL_VALUE",
    "ReaderState",
    "StorageConfig",
    "WRITTEN_VALUE",
    "WriterState",
    "base_object_monotonicity",
    "build_storage_quorum",
    "build_storage_single",
    "regularity_invariant",
    "wrong_regularity_invariant",
]
