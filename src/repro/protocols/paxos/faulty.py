"""Faulty Paxos: the fault-injected variant used for the debugging experiments.

"Faulty Paxos" (Section V-A) injects a bug into the learners: they do not
compare the proposals of the ACCEPT messages they count, so a majority made
up of accepts for *different* proposals is believed and the learner can
learn conflicting values — a consensus violation the model checker should
find quickly (the CE rows of Tables I and II).
"""

from __future__ import annotations

from ...mp.protocol import Protocol
from .config import PaxosConfig
from .quorum import build_paxos_quorum
from .single import build_paxos_single


def build_faulty_paxos_quorum(config: PaxosConfig) -> Protocol:
    """Quorum-transition model with faulty learners."""
    return build_paxos_quorum(config, faulty_learners=True)


def build_faulty_paxos_single(config: PaxosConfig) -> Protocol:
    """Single-message model with faulty learners."""
    return build_paxos_single(config, faulty_learners=True)


__all__ = ["build_faulty_paxos_quorum", "build_faulty_paxos_single"]
