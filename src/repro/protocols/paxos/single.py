"""Paxos modelled with single-message transitions only (the "no quorum" model).

This is the paper's Figure 3 encoding: every quorum transition of the quorum
model is simulated by a single-message transition that counts messages in
the local state and fires the quorum's effect once the counter reaches the
majority threshold.  The protocol behaviour is the same, but the many
intermediate counting states inflate the state space — exactly the effect
quantified in Section II-C and measured in Table I.
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec
from .config import AcceptorState, LearnerState, PaxosConfig, ProposerState
from .quorum import (
    _propose_action,
    _propose_guard,
    _read_action,
    _write_action,
)


def _read_repl_single_action(acceptor_ids, majority: int):
    """Proposer READ_REPL, one message at a time (Figure 3 of the paper).

    Each reply for the proposer's own proposal increments a counter and
    updates the highest accepted value seen; when the counter reaches the
    majority the WRITE messages are sent and the counter is reset.
    """

    def action(local: ProposerState, messages, ctx: ActionContext) -> ProposerState:
        (message,) = messages
        if local.phase != "reading" or message["proposal_no"] != local.proposal_no:
            return local
        count = local.repl_count + 1
        highest_no = local.repl_highest_no
        highest_value = local.repl_highest_value
        accepted_no = message["accepted_no"]
        if accepted_no > highest_no:
            highest_no = accepted_no
            highest_value = message["accepted_value"]
        if count < majority:
            return local.update(
                repl_count=count,
                repl_highest_no=highest_no,
                repl_highest_value=highest_value,
            )
        chosen = highest_value if highest_no > 0 else local.value
        for acceptor in acceptor_ids:
            ctx.send(acceptor, "WRITE", proposal_no=local.proposal_no, value=chosen)
        return local.update(
            phase="written",
            repl_count=0,
            repl_highest_no=0,
            repl_highest_value=None,
        )

    return action


def _accept_single_action(majority: int, faulty: bool):
    """Learner ACCEPT, one message at a time.

    The correct learner keeps one tally per proposal number and learns a
    value once some proposal reaches a majority of distinct accepts; the
    faulty learner keeps a single tally regardless of the proposal number.
    """

    def action(local: LearnerState, messages, _ctx: ActionContext) -> LearnerState:
        (message,) = messages
        proposal_no = 0 if faulty else message["proposal_no"]
        value = message["value"]
        counts = dict()
        for existing_no, existing_count, existing_value in local.accept_counts:
            counts[existing_no] = (existing_count, existing_value)
        count, first_value = counts.get(proposal_no, (0, value))
        count += 1
        if count >= majority:
            counts.pop(proposal_no, None)
            learned_value = value if faulty else first_value
            new_counts = tuple(sorted(
                (no, c, v) for no, (c, v) in counts.items()
            ))
            return local.update(
                learned=local.learned | {learned_value},
                accept_counts=new_counts,
            )
        counts[proposal_no] = (count, first_value)
        new_counts = tuple(sorted((no, c, v) for no, (c, v) in counts.items()))
        return local.update(accept_counts=new_counts)

    return action


def build_paxos_single(config: PaxosConfig, faulty_learners: bool = False) -> Protocol:
    """Build the single-message ("no quorum") Paxos model for a setting."""
    variant = "faulty paxos" if faulty_learners else "paxos"
    builder = ProtocolBuilder(f"{variant} {config.setting_label} single-message")
    proposers = config.proposer_ids()
    acceptors = config.acceptor_ids()
    learners = config.learner_ids()
    acceptor_set = frozenset(acceptors)
    learner_set = frozenset(learners)
    proposer_set = frozenset(proposers)

    for index, pid in enumerate(proposers):
        builder.add_process(
            pid,
            "proposer",
            ProposerState(
                proposal_no=config.proposal_number(index),
                value=config.proposal_value(index),
            ),
        )
    for pid in acceptors:
        builder.add_process(pid, "acceptor", AcceptorState())
    for pid in learners:
        builder.add_process(pid, "learner", LearnerState())

    for pid in proposers:
        builder.add_transition(
            name=f"PROPOSE@{pid}",
            process_id=pid,
            message_type="PROPOSE",
            action=_propose_action(acceptors),
            guard=_propose_guard,
            annotation=LporAnnotation(
                sends=(SendSpec("READ", recipients=acceptor_set),),
                possible_senders=frozenset({DRIVER}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"READ_REPL@{pid}",
            process_id=pid,
            message_type="READ_REPL",
            action=_read_repl_single_action(acceptors, config.majority),
            annotation=LporAnnotation(
                sends=(SendSpec("WRITE", recipients=acceptor_set),),
                possible_senders=acceptor_set,
                priority=2,
            ),
        )
        builder.trigger("PROPOSE", pid)

    for pid in acceptors:
        builder.add_transition(
            name=f"READ@{pid}",
            process_id=pid,
            message_type="READ",
            action=_read_action,
            annotation=LporAnnotation(
                sends=(SendSpec("READ_REPL", to_senders_only=True),),
                possible_senders=proposer_set,
                is_reply=True,
                priority=2,
            ),
        )
        builder.add_transition(
            name=f"WRITE@{pid}",
            process_id=pid,
            message_type="WRITE",
            action=_write_action(learners),
            annotation=LporAnnotation(
                sends=(SendSpec("ACCEPT", recipients=learner_set),),
                possible_senders=proposer_set,
                priority=1,
            ),
        )

    for pid in learners:
        builder.add_transition(
            name=f"ACCEPT@{pid}",
            process_id=pid,
            message_type="ACCEPT",
            action=_accept_single_action(config.majority, faulty_learners),
            annotation=LporAnnotation(
                possible_senders=acceptor_set,
                visible=True,
                finishes_instance=True,
                priority=0,
            ),
        )

    builder.set_metadata(
        protocol="paxos",
        model="single-message",
        setting=config.setting_label,
        faulty_learners=faulty_learners,
        majority=config.majority,
    )
    return builder.build()


__all__ = ["build_paxos_single"]
