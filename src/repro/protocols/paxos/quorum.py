"""Paxos modelled with quorum transitions (the paper's Figure 2 style).

The model follows the paper's phase naming: READ / READ_REPL / WRITE /
ACCEPT correspond to the classic 1a / 1b / 2a / 2b messages.  The two
quorum transitions are the proposer's READ_REPL handler (a majority of
acceptor replies) and the learner's ACCEPT handler (a majority of matching
acceptor accepts).
"""

from __future__ import annotations

from ...mp.builder import ProtocolBuilder
from ...mp.message import DRIVER
from ...mp.protocol import Protocol
from ...mp.transition import ActionContext, LporAnnotation, SendSpec, exact_quorum
from .config import AcceptorState, LearnerState, PaxosConfig, ProposerState


def _propose_action(acceptor_ids):
    """Proposer PROPOSE: start phase 1 by sending READ to every acceptor."""

    def action(local: ProposerState, _messages, ctx: ActionContext) -> ProposerState:
        for acceptor in acceptor_ids:
            ctx.send(acceptor, "READ", proposal_no=local.proposal_no)
        return local.update(phase="reading")

    return action


def _propose_guard(local: ProposerState, _messages) -> bool:
    return local.phase == "idle"


def _read_repl_guard(local: ProposerState, messages) -> bool:
    """Enabled for a majority of replies that answer *this* proposal."""
    if local.phase != "reading":
        return False
    return all(message["proposal_no"] == local.proposal_no for message in messages)


def _read_repl_action(acceptor_ids):
    """Proposer READ_REPL: adopt the highest accepted value and send WRITE."""

    def action(local: ProposerState, messages, ctx: ActionContext) -> ProposerState:
        highest_no = 0
        highest_value = None
        for message in messages:
            accepted_no = message["accepted_no"]
            if accepted_no > highest_no:
                highest_no = accepted_no
                highest_value = message["accepted_value"]
        chosen = highest_value if highest_no > 0 else local.value
        for acceptor in acceptor_ids:
            ctx.send(acceptor, "WRITE", proposal_no=local.proposal_no, value=chosen)
        return local.update(phase="written")

    return action


def _read_action(local: AcceptorState, messages, ctx: ActionContext) -> AcceptorState:
    """Acceptor READ: promise if the proposal is new, reply with what was accepted."""
    (message,) = messages
    proposal_no = message["proposal_no"]
    if proposal_no <= local.promised_no:
        return local
    ctx.send(
        message.sender,
        "READ_REPL",
        proposal_no=proposal_no,
        accepted_no=local.accepted_no,
        accepted_value=local.accepted_value,
    )
    return local.update(promised_no=proposal_no)


def _write_action(learner_ids):
    """Acceptor WRITE: accept unless a higher promise was made, notify learners."""

    def action(local: AcceptorState, messages, ctx: ActionContext) -> AcceptorState:
        (message,) = messages
        proposal_no = message["proposal_no"]
        if proposal_no < local.promised_no:
            return local
        value = message["value"]
        for learner in learner_ids:
            ctx.send(learner, "ACCEPT", proposal_no=proposal_no, value=value)
        return local.update(
            promised_no=proposal_no, accepted_no=proposal_no, accepted_value=value
        )

    return action


def _accept_guard_correct(_local: LearnerState, messages) -> bool:
    """Correct learner: a quorum counts only if all accepts carry the same proposal."""
    first = messages[0]["proposal_no"]
    return all(message["proposal_no"] == first for message in messages)


def _accept_guard_faulty(_local: LearnerState, _messages) -> bool:
    """Faulty learner (the paper's "Faulty Paxos"): any majority is believed."""
    return True


def _accept_action(local: LearnerState, messages, _ctx: ActionContext) -> LearnerState:
    """Learner ACCEPT: learn the value carried by the quorum.

    The correct guard guarantees all messages agree; under the faulty guard
    the quorum may mix proposals, in which case the learner blindly takes
    the value of the first message — exactly the "does not compare values"
    fault injected in Section V-A.
    """
    value = messages[0]["value"]
    return local.update(learned=local.learned | {value})


def build_paxos_quorum(config: PaxosConfig, faulty_learners: bool = False) -> Protocol:
    """Build the quorum-transition Paxos model for a setting.

    Args:
        config: The ``(P, A, L)`` setting.
        faulty_learners: Inject the "Faulty Paxos" bug: learners do not
            compare the proposals of the ACCEPT messages they count.
    """
    variant = "faulty paxos" if faulty_learners else "paxos"
    builder = ProtocolBuilder(f"{variant} {config.setting_label} quorum")
    proposers = config.proposer_ids()
    acceptors = config.acceptor_ids()
    learners = config.learner_ids()
    acceptor_set = frozenset(acceptors)
    learner_set = frozenset(learners)
    proposer_set = frozenset(proposers)

    for index, pid in enumerate(proposers):
        builder.add_process(
            pid,
            "proposer",
            ProposerState(
                proposal_no=config.proposal_number(index),
                value=config.proposal_value(index),
            ),
        )
    for pid in acceptors:
        builder.add_process(pid, "acceptor", AcceptorState())
    for pid in learners:
        builder.add_process(pid, "learner", LearnerState())

    # Proposer transitions -------------------------------------------------
    for pid in proposers:
        builder.add_transition(
            name=f"PROPOSE@{pid}",
            process_id=pid,
            message_type="PROPOSE",
            action=_propose_action(acceptors),
            guard=_propose_guard,
            annotation=LporAnnotation(
                sends=(SendSpec("READ", recipients=acceptor_set),),
                possible_senders=frozenset({DRIVER}),
                starts_instance=True,
                priority=3,
            ),
        )
        builder.add_transition(
            name=f"READ_REPL@{pid}",
            process_id=pid,
            message_type="READ_REPL",
            quorum=exact_quorum(config.majority),
            guard=_read_repl_guard,
            action=_read_repl_action(acceptors),
            annotation=LporAnnotation(
                sends=(SendSpec("WRITE", recipients=acceptor_set),),
                possible_senders=acceptor_set,
                priority=2,
            ),
        )
        builder.trigger("PROPOSE", pid)

    # Acceptor transitions -------------------------------------------------
    for pid in acceptors:
        builder.add_transition(
            name=f"READ@{pid}",
            process_id=pid,
            message_type="READ",
            action=_read_action,
            annotation=LporAnnotation(
                sends=(SendSpec("READ_REPL", to_senders_only=True),),
                possible_senders=proposer_set,
                is_reply=True,
                priority=2,
            ),
        )
        builder.add_transition(
            name=f"WRITE@{pid}",
            process_id=pid,
            message_type="WRITE",
            action=_write_action(learners),
            annotation=LporAnnotation(
                sends=(SendSpec("ACCEPT", recipients=learner_set),),
                possible_senders=proposer_set,
                priority=1,
            ),
        )

    # Learner transitions --------------------------------------------------
    accept_guard = _accept_guard_faulty if faulty_learners else _accept_guard_correct
    for pid in learners:
        builder.add_transition(
            name=f"ACCEPT@{pid}",
            process_id=pid,
            message_type="ACCEPT",
            quorum=exact_quorum(config.majority),
            guard=accept_guard,
            action=_accept_action,
            annotation=LporAnnotation(
                possible_senders=acceptor_set,
                visible=True,
                finishes_instance=True,
                priority=0,
            ),
        )

    builder.set_metadata(
        protocol="paxos",
        model="quorum",
        setting=config.setting_label,
        faulty_learners=faulty_learners,
        majority=config.majority,
    )
    return builder.build()


# Re-exported for convenience in type hints of downstream modules.
__all__ = ["build_paxos_quorum"]
