"""Properties of the Paxos models."""

from __future__ import annotations

from typing import Set

from ...checker.property import Invariant
from ...mp.protocol import Protocol
from ...mp.state import GlobalState


def _all_learned_values(state: GlobalState, protocol: Protocol) -> Set[str]:
    values: Set[str] = set()
    for learner in protocol.processes_of_type("learner"):
        values |= set(state.local(learner.pid).learned)
    return values


def consensus_invariant() -> Invariant:
    """At most one value is ever learned, across all learners and all time.

    This is the safety part of consensus (agreement): because learners
    accumulate every value they learn, a state in which two different
    values appear in the union of the learners' ``learned`` sets witnesses
    a violation.
    """

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        return len(_all_learned_values(state, protocol)) <= 1

    return Invariant(
        name="consensus",
        predicate=predicate,
        network_sensitive=False,
        description="no two learners (or the same learner over time) learn different values",
    )


def chosen_value_validity() -> Invariant:
    """Every learned value was proposed by some proposer (validity)."""

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        proposed = {
            state.local(proposer.pid).value
            for proposer in protocol.processes_of_type("proposer")
        }
        return _all_learned_values(state, protocol) <= proposed

    return Invariant(
        name="validity",
        predicate=predicate,
        network_sensitive=False,
        description="learned values were actually proposed",
    )


def acceptor_consistency() -> Invariant:
    """An acceptor never accepts below its own promise.

    A sanity invariant of the model itself (not a paper experiment): the
    accepted proposal number never exceeds the promised one.
    """

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        for acceptor in protocol.processes_of_type("acceptor"):
            local = state.local(acceptor.pid)
            if local.accepted_no > local.promised_no:
                return False
        return True

    return Invariant(
        name="acceptor-consistency",
        predicate=predicate,
        network_sensitive=False,
        description="accepted_no <= promised_no at every acceptor",
    )


__all__ = ["acceptor_consistency", "chosen_value_validity", "consensus_invariant"]
