"""Paxos consensus models (Section V-A of the paper).

Quorum-transition and single-message ("no quorum") models of single-decree
Paxos, the fault-injected "Faulty Paxos" variants, and the consensus
invariant they are checked against.
"""

from .config import AcceptorState, LearnerState, PaxosConfig, ProposerState
from .faulty import build_faulty_paxos_quorum, build_faulty_paxos_single
from .properties import acceptor_consistency, chosen_value_validity, consensus_invariant
from .quorum import build_paxos_quorum
from .single import build_paxos_single

__all__ = [
    "AcceptorState",
    "LearnerState",
    "PaxosConfig",
    "ProposerState",
    "acceptor_consistency",
    "build_faulty_paxos_quorum",
    "build_faulty_paxos_single",
    "build_paxos_quorum",
    "build_paxos_single",
    "chosen_value_validity",
    "consensus_invariant",
]
