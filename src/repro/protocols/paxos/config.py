"""Configuration and local states of the Paxos models.

A Paxos setting ``(P, A, L)`` gives the number of proposers, acceptors and
learners (Section V-A).  Every proposer proposes a distinct value with a
distinct proposal number, which keeps the instance finite while still
exercising the interesting contention between concurrent proposals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...mp.process import LocalState
from ...mp.transition import majority_of


@dataclass(frozen=True)
class PaxosConfig:
    """A Paxos protocol setting.

    Attributes:
        proposers: Number of proposer processes (each proposes once).
        acceptors: Number of acceptor processes.
        learners: Number of learner processes.
    """

    proposers: int = 2
    acceptors: int = 3
    learners: int = 1

    def __post_init__(self) -> None:
        if self.proposers < 1 or self.acceptors < 1 or self.learners < 1:
            raise ValueError("a Paxos setting needs at least one process of each type")

    @property
    def majority(self) -> int:
        """The acceptor majority threshold used by READ_REPL and ACCEPT."""
        return majority_of(self.acceptors)

    @property
    def setting_label(self) -> str:
        """The paper's ``(P,A,L)`` notation."""
        return f"({self.proposers},{self.acceptors},{self.learners})"

    def proposer_ids(self) -> Tuple[str, ...]:
        return tuple(f"proposer{i + 1}" for i in range(self.proposers))

    def acceptor_ids(self) -> Tuple[str, ...]:
        return tuple(f"acceptor{i + 1}" for i in range(self.acceptors))

    def learner_ids(self) -> Tuple[str, ...]:
        return tuple(f"learner{i + 1}" for i in range(self.learners))

    def proposal_number(self, proposer_index: int) -> int:
        """Distinct proposal number of the ``proposer_index``-th proposer."""
        return proposer_index + 1

    def proposal_value(self, proposer_index: int) -> str:
        """Distinct value proposed by the ``proposer_index``-th proposer."""
        return f"value{proposer_index + 1}"


@dataclass(frozen=True)
class ProposerState(LocalState):
    """Local state of a proposer.

    Attributes:
        proposal_no: The proposer's (unique) proposal number.
        value: The value the proposer wants to propose.
        phase: ``"idle"`` before proposing, ``"reading"`` while collecting
            READ_REPL messages, ``"written"`` after sending WRITE.
        repl_count: Number of READ_REPL messages counted so far (used only
            by the single-message model).
        repl_highest_no: Highest accepted proposal number seen in counted
            replies (single-message model only).
        repl_highest_value: Value associated with ``repl_highest_no``
            (single-message model only).
    """

    proposal_no: int
    value: str
    phase: str = "idle"
    repl_count: int = 0
    repl_highest_no: int = 0
    repl_highest_value: Optional[str] = None


@dataclass(frozen=True)
class AcceptorState(LocalState):
    """Local state of an acceptor.

    Attributes:
        promised_no: Highest proposal number promised (0 = none).
        accepted_no: Highest proposal number accepted (0 = none).
        accepted_value: Value accepted with ``accepted_no``.
    """

    promised_no: int = 0
    accepted_no: int = 0
    accepted_value: Optional[str] = None


@dataclass(frozen=True)
class LearnerState(LocalState):
    """Local state of a learner.

    Attributes:
        learned: Every value the learner has learned so far (a set so that
            a faulty run learning two different values is observable).
        accept_counts: Per-proposal tallies of ACCEPT messages, used only by
            the single-message model: a sorted tuple of
            ``(proposal_no, count, value)`` triples.
    """

    learned: frozenset = frozenset()
    accept_counts: Tuple[Tuple[int, int, str], ...] = ()
