"""Explicit-state model checking engine.

This package is the substrate the paper builds on (the JPF/Basset analogue):
state-space search (stateful and stateless), visited-state stores, invariant
properties, counterexamples and run statistics, plus the
:class:`ModelChecker` facade that selects between unreduced search, static
POR and dynamic POR.
"""

from .checker import (
    STRATEGY_ALIASES,
    CheckerOptions,
    ModelChecker,
    Strategy,
    check_plan,
    check_protocol,
    plan_for_strategy,
)
from .counterexample import Counterexample, Step
from .property import (
    Eventually,
    Invariant,
    always_true,
    conjunction,
    goal_of,
    local_state_invariant,
)
from .result import (
    OUTCOME_LABELS,
    OUTCOMES,
    CheckResult,
    SearchStatistics,
    outcome_of,
)
from .search import (
    ReductionContext,
    Reducer,
    SearchConfig,
    SearchOutcome,
    bfs_search,
    dfs_search,
    ndfs_search,
)
from .statestore import (
    STORE_KINDS,
    FingerprintStore,
    FullStateStore,
    NullStateStore,
    ShardedFingerprintStore,
    StateStore,
    make_state_store,
    mix_fingerprint,
    shard_of,
)

__all__ = [
    "CheckResult",
    "OUTCOMES",
    "OUTCOME_LABELS",
    "outcome_of",
    "CheckerOptions",
    "Counterexample",
    "STRATEGY_ALIASES",
    "check_plan",
    "plan_for_strategy",
    "Eventually",
    "FingerprintStore",
    "FullStateStore",
    "Invariant",
    "ModelChecker",
    "NullStateStore",
    "ReductionContext",
    "Reducer",
    "SearchConfig",
    "STORE_KINDS",
    "SearchOutcome",
    "SearchStatistics",
    "ShardedFingerprintStore",
    "StateStore",
    "Step",
    "Strategy",
    "always_true",
    "bfs_search",
    "check_protocol",
    "conjunction",
    "dfs_search",
    "goal_of",
    "local_state_invariant",
    "ndfs_search",
    "make_state_store",
    "mix_fingerprint",
    "shard_of",
]
