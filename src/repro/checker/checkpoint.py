"""Checkpoint/resume for breadth-first searches.

A breadth-first search has a natural durable point: the level barrier.
Everything the search will ever need again is the visited set, the parent
edges (for counterexample rebuilding) and the current frontier — all of
which the coordinator holds between levels.  A :class:`Checkpoint`
serialises exactly that, so a run killed mid-search resumes from the last
completed level with a verdict and visited count identical to an
uninterrupted run.

Two representation decisions matter:

* **States, not fingerprints.**  Object-graph fingerprints are derived
  from Python's string hashing (see :mod:`repro.mp.state`), which is
  per-process unless ``PYTHONHASHSEED`` is pinned.  A checkpoint loaded
  into a fresh process would mis-route every stored fingerprint, so the
  checkpoint stores the compact state pickles (``GlobalState.__reduce__``
  is intern-table-aware and small) and the resuming process recomputes
  fingerprints itself.  This also makes a checkpoint valid for *any*
  worker count: resharding is recomputed at restore time.

* **Execution indices, not executions.**  Transition executions close
  over protocol callables and do not pickle.  Parent edges store the index
  of the execution within the parent's enabled set — the enabled order is
  deterministic — and the resuming process recomputes the execution only
  if a counterexample actually needs rebuilding.

Files are written atomically (temp file + ``os.replace``) so a crash
mid-write can never leave a truncated checkpoint that parses.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..mp.state import GlobalState
from .result import SearchStatistics

#: Bumped whenever the on-disk layout changes; a mismatch is a hard error,
#: never a silent misparse.
CHECKPOINT_VERSION = 1

#: File suffix of checkpoint files inside a checkpoint directory.
CHECKPOINT_SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt or incompatible."""


@dataclass
class Checkpoint:
    """A BFS level barrier, serialised.

    Attributes:
        depth: Completed levels (in edges); the resumed search continues
            expanding the stored frontier as level ``depth + 1``.
        statistics: Exploration counters accumulated so far.  The resumed
            run continues these, so the final visited/transition counts
            match an uninterrupted run exactly.
        states: Every visited state, in discovery order.  Index in this
            list is the state's identity within the checkpoint.
        edges: Parent edge per state, aligned with ``states``:
            ``(parent_index, exec_index)`` or ``None`` for the initial
            state.  ``exec_index`` indexes the parent's deterministic
            enabled-execution order.
        frontier: Indices (into ``states``) of the current frontier.
        meta: Informational context (protocol/property names, worker
            count); consulted by humans and sanity checks, not by the
            resume algorithm.
    """

    depth: int
    statistics: SearchStatistics
    states: List[GlobalState]
    edges: List[Optional[Tuple[int, int]]]
    frontier: List[int]
    meta: dict = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"checkpoint at depth {self.depth}: {len(self.states)} states, "
            f"frontier {len(self.frontier)}"
        )


def checkpoint_path(directory: str, depth: int) -> str:
    """Canonical file name for a level's checkpoint inside a directory."""
    return os.path.join(directory, f"checkpoint-{depth:06d}{CHECKPOINT_SUFFIX}")


def write_checkpoint(checkpoint: Checkpoint, directory: str) -> str:
    """Atomically write a checkpoint into ``directory``; returns its path.

    The directory is created on demand.  The write goes to a temp file in
    the same directory first and is published with ``os.replace``, so
    readers only ever see complete checkpoints.
    """
    os.makedirs(directory, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "depth": checkpoint.depth,
        "statistics": dataclasses.asdict(checkpoint.statistics),
        "states": checkpoint.states,
        "edges": checkpoint.edges,
        "frontier": checkpoint.frontier,
        "meta": checkpoint.meta,
    }
    final_path = checkpoint_path(directory, checkpoint.depth)
    fd, temp_path = tempfile.mkstemp(
        prefix=".checkpoint-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_path, final_path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return final_path


def latest_checkpoint(directory: str) -> Optional[str]:
    """Path of the deepest checkpoint in a directory, or ``None``."""
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    candidates = sorted(
        name for name in names
        if name.startswith("checkpoint-") and name.endswith(CHECKPOINT_SUFFIX)
    )
    if not candidates:
        return None
    return os.path.join(directory, candidates[-1])


def load_checkpoint(path: str) -> Checkpoint:
    """Load a checkpoint from a file, or the deepest one from a directory.

    Raises:
        CheckpointError: The path names no checkpoint, or the file is
            corrupt or from an incompatible version.
    """
    if os.path.isdir(path):
        resolved = latest_checkpoint(path)
        if resolved is None:
            raise CheckpointError(f"no checkpoint files in directory {path!r}")
        path = resolved
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint {path!r} does not exist") from None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"checkpoint {path!r} is unreadable: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else '?'} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    try:
        return Checkpoint(
            depth=payload["depth"],
            statistics=SearchStatistics(**payload["statistics"]),
            states=payload["states"],
            edges=payload["edges"],
            frontier=payload["frontier"],
            meta=payload.get("meta", {}),
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"checkpoint {path!r} is malformed: {exc}") from exc
