"""Results and statistics of a model checking run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .counterexample import Counterexample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.plan import CheckPlan

#: The three honest verdicts a check run can reach.  ``"verified"`` means
#: the whole (possibly reduced) state space was explored and no violation
#: exists; ``"violated"`` means a counterexample was found (conclusive even
#: when the search stopped at it); ``"inconclusive"`` means the search was
#: truncated by a budget before covering the space — the absence of a
#: counterexample proves nothing.
OUTCOMES = ("verified", "violated", "inconclusive")

#: Rendered labels per outcome, shared by every consumer (CLI check/sweep/
#: bench lines, reports, bench records) so a truncated run can never
#: stringify as a proof anywhere.
OUTCOME_LABELS = {
    "verified": "Verified",
    "violated": "CE",
    "inconclusive": "Inconclusive (budget hit)",
}


def outcome_label_for(outcome: str, incomplete_reason: Optional[str] = None) -> str:
    """Rendered label for an outcome, honouring a specific truncation reason.

    ``inconclusive`` defaults to the budget spelling (the overwhelmingly
    common cause), but a run that was cut short for another reason — a
    crashed worker the supervisor could not recover, a cancelled service
    job — renders that reason instead: ``Inconclusive (worker crash)``,
    ``Inconclusive (cancelled)``.  Conclusive outcomes ignore the reason.
    """
    if outcome == "inconclusive" and incomplete_reason:
        return f"Inconclusive ({incomplete_reason})"
    return OUTCOME_LABELS[outcome]


def outcome_of(verified: bool, complete: bool, found_counterexample: bool) -> str:
    """Derive the three-valued outcome from the raw verdict flags.

    A found counterexample is conclusive evidence regardless of
    completeness (stop-at-first-violation always reports
    ``complete=False``); a clean *and complete* search is a proof; a clean
    but truncated search is honest about proving nothing.
    """
    if found_counterexample or not verified:
        return "violated"
    if complete:
        return "verified"
    return "inconclusive"


@dataclass
class SearchStatistics:
    """Counters collected during state-space exploration.

    Attributes:
        states_visited: Number of distinct states stored (stateful search)
            or states expanded (stateless search).
        transitions_executed: Number of executed transitions (edges
            traversed, counting re-traversals).
        revisits: Number of times an already-visited state was reached
            again (stateful search only).
        max_depth: Edges on the deepest explored path: the deepest DFS
            stack reached, or the deepest level that discovered a state in
            a breadth-first search.  All engines count edges, so a search
            that never leaves the initial state reports 0.
        elapsed_seconds: Wall-clock duration of the search.
        enabled_set_computations: Number of enabled-execution computations;
            a proxy for the quorum-enumeration overhead of Section IV-A.
        reduced_expansions: Number of states where the reduction explored a
            strict subset of the enabled executions.
        full_expansions: Number of states expanded without reduction.
    """

    states_visited: int = 0
    transitions_executed: int = 0
    revisits: int = 0
    max_depth: int = 0
    elapsed_seconds: float = 0.0
    enabled_set_computations: int = 0
    reduced_expansions: int = 0
    full_expansions: int = 0

    def merge(self, other: "SearchStatistics") -> "SearchStatistics":
        """Return the component-wise sum of two statistics objects."""
        return SearchStatistics(
            states_visited=self.states_visited + other.states_visited,
            transitions_executed=self.transitions_executed + other.transitions_executed,
            revisits=self.revisits + other.revisits,
            max_depth=max(self.max_depth, other.max_depth),
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            enabled_set_computations=(
                self.enabled_set_computations + other.enabled_set_computations
            ),
            reduced_expansions=self.reduced_expansions + other.reduced_expansions,
            full_expansions=self.full_expansions + other.full_expansions,
        )


@dataclass
class CheckResult:
    """Outcome of one model checking run.

    Attributes:
        protocol_name: Name of the checked protocol instance.
        property_name: Name of the checked property.
        strategy: Name of the search strategy (unreduced / SPOR / DPOR ...).
        verified: True if no violation was found within the explored space.
        complete: True if the whole (possibly reduced) state space was
            explored; False when the search hit a bound or was stopped at
            the first violation.
        counterexample: A violating path, if one was found.
        statistics: Exploration counters.
        stateful: Whether visited states were stored.
        plan: The resolved :class:`~repro.engine.plan.CheckPlan` the run
            executed (None for results built outside the plan layer).
        engine: Registry name of the engine that ran the plan.
        telemetry: JSON-able run report (metric snapshot, finished phase
            spans, peak RSS) produced by the observability layer; None for
            results built outside the plan layer.
        incomplete_reason: Why the run is incomplete, when the cause is not
            the ordinary budget: ``"worker crash"`` (unrecovered worker
            death), ``"cancelled"`` (service preemption).  ``None`` for
            complete runs and plain budget truncations.
    """

    protocol_name: str
    property_name: str
    strategy: str
    verified: bool
    complete: bool
    counterexample: Optional[Counterexample] = None
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    stateful: bool = True
    plan: Optional["CheckPlan"] = None
    engine: Optional[str] = None
    telemetry: Optional[dict] = None
    incomplete_reason: Optional[str] = None

    @property
    def found_counterexample(self) -> bool:
        """True if a property violation was found."""
        return self.counterexample is not None

    def outcome(self) -> str:
        """Three-valued verdict: ``verified`` / ``violated`` / ``inconclusive``.

        ``verified`` requires ``complete=True``: a run truncated by a
        ``max_states``/``max_seconds``/``max_depth`` budget that found no
        violation is ``inconclusive``, never a proof.
        """
        return outcome_of(self.verified, self.complete, self.found_counterexample)

    @property
    def conclusive(self) -> bool:
        """True when the verdict is a proof or a counterexample."""
        return self.outcome() != "inconclusive"

    def outcome_label(self) -> str:
        """Rendered label: ``Verified``, ``CE`` or ``Inconclusive (budget hit)``.

        Matches the paper's tables for conclusive runs; a budget-truncated
        clean run is labelled honestly instead of masquerading as
        ``Verified``.  Runs truncated by a worker crash or a cancellation
        render their specific reason (``Inconclusive (worker crash)`` /
        ``Inconclusive (cancelled)``).
        """
        return outcome_label_for(self.outcome(), self.incomplete_reason)

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"{self.protocol_name} | {self.property_name} | {self.strategy}: "
            f"{self.outcome_label()} — {self.statistics.states_visited} states, "
            f"{self.statistics.elapsed_seconds:.2f}s"
        )
