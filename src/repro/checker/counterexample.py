"""Counterexamples: violating paths through the state graph."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..mp.state import GlobalState
from ..mp.transition import Execution


@dataclass(frozen=True)
class Step:
    """One step of a counterexample: an execution and the state it reaches."""

    execution: Execution
    state: GlobalState


@dataclass(frozen=True)
class Counterexample:
    """A path from the initial state to a property-violating state.

    Attributes:
        initial_state: The initial state of the protocol.
        steps: The executed transitions with the states they lead to; the
            final state of the last step violates the property.
        property_name: Name of the violated property.
    """

    initial_state: GlobalState
    steps: Tuple[Step, ...]
    property_name: str

    @property
    def length(self) -> int:
        """Number of transitions on the violating path."""
        return len(self.steps)

    @property
    def violating_state(self) -> GlobalState:
        """The final, property-violating state."""
        if not self.steps:
            return self.initial_state
        return self.steps[-1].state

    def executions(self) -> Tuple[Execution, ...]:
        """The executed transitions along the path, in order."""
        return tuple(step.execution for step in self.steps)

    def transition_names(self) -> Tuple[str, ...]:
        """The names of the executed transitions along the path, in order."""
        return tuple(step.execution.transition.name for step in self.steps)

    def format(self, include_states: bool = False) -> str:
        """Render the counterexample for human consumption.

        Args:
            include_states: If True, print every intermediate state; by
                default only the executions and the final state are shown.
        """
        lines = [f"counterexample for property '{self.property_name}' "
                 f"({self.length} steps):"]
        if include_states:
            lines.append(self.initial_state.describe())
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index:3d}. {step.execution.describe()}")
            if include_states:
                lines.append(_indent(step.state.describe(), 6))
        if not include_states:
            lines.append("violating " + self.violating_state.describe())
        return "\n".join(lines)


def _indent(text: str, amount: int) -> str:
    prefix = " " * amount
    return "\n".join(prefix + line for line in text.splitlines())
