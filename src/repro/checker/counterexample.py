"""Counterexamples: violating paths through the state graph.

Invariant counterexamples are plain finite paths: the final state of the
last step violates the property.  Liveness counterexamples are *lassos* — a
finite stem followed by a cycle along which the goal predicate never holds
(``cycle_start`` marks where the cycle begins).  The stutter-extension
convention represents a violating *terminal* state as a lasso with an empty
cycle: the run ends, and ending without reaching the goal is the violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..mp.state import GlobalState
from ..mp.transition import Execution


@dataclass(frozen=True)
class Step:
    """One step of a counterexample: an execution and the state it reaches."""

    execution: Execution
    state: GlobalState


@dataclass(frozen=True)
class Counterexample:
    """A path from the initial state to a property violation.

    Attributes:
        initial_state: The initial state of the protocol.
        steps: The executed transitions with the states they lead to.  For
            invariant violations the final state of the last step violates
            the property; for lassos the final state closes the cycle (it
            equals the state at index ``cycle_start``).
        property_name: Name of the violated property.
        cycle_start: ``None`` for ordinary finite counterexamples.  For a
            lasso, the index into the state sequence (0 = initial state,
            ``i`` = state reached by ``steps[i - 1]``) where the cycle
            starts: ``steps[:cycle_start]`` is the stem and
            ``steps[cycle_start:]`` the cycle.  ``cycle_start == len(steps)``
            encodes the empty cycle of a stuttering terminal state.
    """

    initial_state: GlobalState
    steps: Tuple[Step, ...]
    property_name: str
    cycle_start: Optional[int] = None

    @property
    def length(self) -> int:
        """Number of transitions on the violating path."""
        return len(self.steps)

    @property
    def is_lasso(self) -> bool:
        """Whether this is a stem+cycle liveness counterexample."""
        return self.cycle_start is not None

    @property
    def violating_state(self) -> GlobalState:
        """The final, property-violating state.

        For lassos this is the state closing the cycle (equal to the state
        the cycle started from), or the stuttering terminal state when the
        cycle is empty.
        """
        if not self.steps:
            return self.initial_state
        return self.steps[-1].state

    def state_at(self, index: int) -> GlobalState:
        """The state at position ``index`` of the path (0 = initial state)."""
        if index == 0:
            return self.initial_state
        return self.steps[index - 1].state

    @property
    def stem_steps(self) -> Tuple[Step, ...]:
        """The stem of a lasso (everything before the cycle)."""
        if self.cycle_start is None:
            return self.steps
        return self.steps[: self.cycle_start]

    @property
    def cycle_steps(self) -> Tuple[Step, ...]:
        """The cycle of a lasso; empty for a stuttering terminal state."""
        if self.cycle_start is None:
            return ()
        return self.steps[self.cycle_start:]

    def executions(self) -> Tuple[Execution, ...]:
        """The executed transitions along the path, in order."""
        return tuple(step.execution for step in self.steps)

    def transition_names(self) -> Tuple[str, ...]:
        """The names of the executed transitions along the path, in order."""
        return tuple(step.execution.transition.name for step in self.steps)

    def replay(self, protocol) -> Tuple[GlobalState, ...]:
        """Re-execute the counterexample from the initial state.

        Returns the full state sequence (initial state first).  Raises
        :class:`ValueError` if any recorded execution is not enabled where
        the trace claims it fired, if a reached state differs from the
        recorded one, or if a lasso's cycle does not close — i.e. the trace
        is only accepted when its re-execution is deterministic and lands
        exactly where the search said it would.
        """
        from ..mp.semantics import SuccessorEngine

        engine = SuccessorEngine(protocol)
        states = [self.initial_state]
        for index, step in enumerate(self.steps):
            current = states[-1]
            if step.execution not in engine.enabled(current):
                raise ValueError(
                    f"replay diverged at step {index + 1}: "
                    f"{step.execution.describe()} is not enabled"
                )
            successor = engine.successor(current, step.execution)
            if successor != step.state:
                raise ValueError(
                    f"replay diverged at step {index + 1}: reached a state "
                    "different from the recorded one"
                )
            states.append(successor)
        if self.cycle_start is not None and self.cycle_steps:
            if states[-1] != self.state_at(self.cycle_start):
                raise ValueError("lasso cycle does not close on replay")
        return tuple(states)

    def format(self, include_states: bool = False) -> str:
        """Render the counterexample for human consumption.

        Args:
            include_states: If True, print every intermediate state; by
                default only the executions and the final state are shown.
        """
        if self.cycle_start is None:
            lines = [f"counterexample for property '{self.property_name}' "
                     f"({self.length} steps):"]
        else:
            stem, cycle = self.cycle_start, self.length - self.cycle_start
            lines = [f"lasso counterexample for property "
                     f"'{self.property_name}' ({stem}-step stem + "
                     f"{cycle}-step cycle):"]
        if include_states:
            lines.append(self.initial_state.describe())
        for index, step in enumerate(self.steps, start=1):
            marker = ""
            if self.cycle_start is not None and index == self.cycle_start + 1:
                marker = "  <- cycle starts"
            lines.append(f"  {index:3d}. {step.execution.describe()}{marker}")
            if include_states:
                lines.append(_indent(step.state.describe(), 6))
        if self.cycle_start is not None and self.cycle_start == self.length:
            lines.append("  (terminal state; run ends without reaching the goal)")
        if not include_states:
            lines.append("violating " + self.violating_state.describe())
        return "\n".join(lines)


def _indent(text: str, amount: int) -> str:
    prefix = " " * amount
    return "\n".join(prefix + line for line in text.splitlines())
