"""Properties checked by the model checker.

The paper's evaluation checks invariants (state-local predicates that must
hold in every reachable state); MP-Basset expresses them as Java assertions
inside transitions.  We instead express an invariant as a predicate over the
global state, which is both simpler and strictly more general: the predicate
may inspect every process's local state and the in-flight messages.

Partial-order reduction preserves an invariant only if the transitions that
can change its truth value are flagged ``visible`` in their
:class:`~repro.mp.transition.LporAnnotation` (Appendix I, property
preservation of the SPOR algorithm); the bundled protocol models do so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Tuple

from ..mp.protocol import Protocol
from ..mp.state import GlobalState

#: Predicate signature for invariants.
PredicateFn = Callable[[GlobalState, Protocol], bool]


@dataclass(frozen=True)
class Invariant:
    """A state-local predicate that must hold in every reachable state.

    Attributes:
        name: Human-readable property name (e.g. ``"consensus"``).
        predicate: Returns True when the state satisfies the property.
        description: Optional longer explanation, used in reports.
        network_sensitive: Whether the predicate reads ``state.network``.
            The packed fast-path engines (:mod:`repro.fastpath`) memoise
            invariant verdicts per local-state vector, which is only sound
            when the verdict ignores the in-flight messages; declaring
            ``network_sensitive=False`` opts a predicate into that memo.
            The conservative default keeps arbitrary predicates correct
            (every bundled invariant reads locals only and declares False).
    """

    name: str
    predicate: PredicateFn
    description: str = ""
    network_sensitive: bool = True

    def holds_in(self, state: GlobalState, protocol: Protocol) -> bool:
        """Evaluate the invariant in one state."""
        return bool(self.predicate(state, protocol))

    def negated(self, name: str = "") -> "Invariant":
        """Return the negated invariant (useful for reachability queries)."""
        return Invariant(
            name=name or f"not({self.name})",
            predicate=lambda state, protocol: not self.predicate(state, protocol),
            description=f"negation of: {self.description or self.name}",
            network_sensitive=self.network_sensitive,
        )


@dataclass(frozen=True)
class Eventually:
    """A liveness goal: every maximal run must eventually satisfy ``predicate``.

    A counterexample is a *lasso* — a finite stem followed by a cycle (or a
    terminal state, interpreted under stutter-extension semantics as an
    infinite self-loop) along which the goal predicate never holds.  The
    nested-DFS engines (:func:`repro.checker.search.ndfs_search` and its
    packed twin) search for exactly those accepting cycles.

    Attributes:
        name: Human-readable property name (e.g. ``"eventually-done"``).
        predicate: The *goal* predicate; a run satisfies the property once it
            reaches a state where this returns True.
        description: Optional longer explanation, used in reports.
        network_sensitive: Whether the predicate reads ``state.network``;
            same memoisation contract as :class:`Invariant`.

    The monitor-automaton view: the negation ``◇p`` is a one-state Büchi
    automaton accepting runs on which ``p`` never holds.  States satisfying
    the goal kill the monitor (their subtrees need no exploration —
    :meth:`prunes`), and every surviving state is accepting
    (:meth:`accepting`).  The two hooks are split so generic acceptance
    predicates (where only *some* non-goal states are accepting) can reuse
    the same nested-DFS machinery.
    """

    name: str
    predicate: PredicateFn
    description: str = ""
    network_sensitive: bool = True

    def holds_in(self, state: GlobalState, protocol: Protocol) -> bool:
        """Whether the goal predicate holds in one state.

        Shares the :class:`Invariant` evaluation signature so the fast-path
        verdict memo (:func:`repro.fastpath.search.make_invariant_checker`)
        works unchanged for liveness goals.
        """
        return bool(self.predicate(state, protocol))

    def prunes(self, state: GlobalState, protocol: Protocol) -> bool:
        """Whether the monitor dies in ``state`` (goal reached; subtree moot)."""
        return self.holds_in(state, protocol)

    def accepting(self, state: GlobalState, protocol: Protocol) -> bool:
        """Whether ``state`` is accepting (goal not yet reached).

        For ``Eventually`` this is simply the complement of :meth:`prunes`;
        duck-typed properties may declare a strict subset of non-pruned
        states accepting, which is what exercises the red phase of the
        nested DFS.
        """
        return not self.holds_in(state, protocol)


def goal_of(prop: object) -> str:
    """Return the :class:`~repro.engine.plan.CheckPlan` goal axis value
    matching a property object: ``"liveness"`` for acceptance-cycle
    properties (anything exposing ``prunes``/``accepting`` hooks, i.e.
    :class:`Eventually` and duck-typed equivalents), ``"invariant"``
    otherwise."""
    if isinstance(prop, Eventually):
        return "liveness"
    if hasattr(prop, "prunes") and hasattr(prop, "accepting"):
        return "liveness"
    return "invariant"


def conjunction(name: str, invariants: Iterable[Invariant]) -> Invariant:
    """Return the conjunction of several invariants as a single invariant."""
    parts: Tuple[Invariant, ...] = tuple(invariants)

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        return all(part.holds_in(state, protocol) for part in parts)

    return Invariant(
        name=name,
        predicate=predicate,
        description="conjunction of: " + ", ".join(part.name for part in parts),
        network_sensitive=any(part.network_sensitive for part in parts),
    )


def always_true(name: str = "true") -> Invariant:
    """An invariant that holds everywhere; useful for pure state-space measurement."""
    return Invariant(name=name, predicate=lambda _state, _protocol: True,
                     description="trivially true", network_sensitive=False)


def local_state_invariant(
    name: str,
    ptype: str,
    predicate: Callable[[object], bool],
    description: str = "",
) -> Invariant:
    """Build an invariant that must hold of every process of a given type.

    Args:
        name: Property name.
        ptype: Process type whose local states are inspected.
        predicate: Predicate over a single local state.
        description: Optional explanation.
    """

    def check(state: GlobalState, protocol: Protocol) -> bool:
        for process in protocol.processes_of_type(ptype):
            if not predicate(state.local(process.pid)):
                return False
        return True

    return Invariant(name=name, predicate=check, description=description,
                     network_sensitive=False)
