"""Properties checked by the model checker.

The paper's evaluation checks invariants (state-local predicates that must
hold in every reachable state); MP-Basset expresses them as Java assertions
inside transitions.  We instead express an invariant as a predicate over the
global state, which is both simpler and strictly more general: the predicate
may inspect every process's local state and the in-flight messages.

Partial-order reduction preserves an invariant only if the transitions that
can change its truth value are flagged ``visible`` in their
:class:`~repro.mp.transition.LporAnnotation` (Appendix I, property
preservation of the SPOR algorithm); the bundled protocol models do so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Tuple

from ..mp.protocol import Protocol
from ..mp.state import GlobalState

#: Predicate signature for invariants.
PredicateFn = Callable[[GlobalState, Protocol], bool]


@dataclass(frozen=True)
class Invariant:
    """A state-local predicate that must hold in every reachable state.

    Attributes:
        name: Human-readable property name (e.g. ``"consensus"``).
        predicate: Returns True when the state satisfies the property.
        description: Optional longer explanation, used in reports.
        network_sensitive: Whether the predicate reads ``state.network``.
            The packed fast-path engines (:mod:`repro.fastpath`) memoise
            invariant verdicts per local-state vector, which is only sound
            when the verdict ignores the in-flight messages; declaring
            ``network_sensitive=False`` opts a predicate into that memo.
            The conservative default keeps arbitrary predicates correct
            (every bundled invariant reads locals only and declares False).
    """

    name: str
    predicate: PredicateFn
    description: str = ""
    network_sensitive: bool = True

    def holds_in(self, state: GlobalState, protocol: Protocol) -> bool:
        """Evaluate the invariant in one state."""
        return bool(self.predicate(state, protocol))

    def negated(self, name: str = "") -> "Invariant":
        """Return the negated invariant (useful for reachability queries)."""
        return Invariant(
            name=name or f"not({self.name})",
            predicate=lambda state, protocol: not self.predicate(state, protocol),
            description=f"negation of: {self.description or self.name}",
            network_sensitive=self.network_sensitive,
        )


def conjunction(name: str, invariants: Iterable[Invariant]) -> Invariant:
    """Return the conjunction of several invariants as a single invariant."""
    parts: Tuple[Invariant, ...] = tuple(invariants)

    def predicate(state: GlobalState, protocol: Protocol) -> bool:
        return all(part.holds_in(state, protocol) for part in parts)

    return Invariant(
        name=name,
        predicate=predicate,
        description="conjunction of: " + ", ".join(part.name for part in parts),
        network_sensitive=any(part.network_sensitive for part in parts),
    )


def always_true(name: str = "true") -> Invariant:
    """An invariant that holds everywhere; useful for pure state-space measurement."""
    return Invariant(name=name, predicate=lambda _state, _protocol: True,
                     description="trivially true", network_sensitive=False)


def local_state_invariant(
    name: str,
    ptype: str,
    predicate: Callable[[object], bool],
    description: str = "",
) -> Invariant:
    """Build an invariant that must hold of every process of a given type.

    Args:
        name: Property name.
        ptype: Process type whose local states are inspected.
        predicate: Predicate over a single local state.
        description: Optional explanation.
    """

    def check(state: GlobalState, protocol: Protocol) -> bool:
        for process in protocol.processes_of_type(ptype):
            if not predicate(state.local(process.pid)):
                return False
        return True

    return Invariant(name=name, predicate=check, description=description,
                     network_sensitive=False)
