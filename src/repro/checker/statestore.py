"""Visited-state stores for stateful search.

Two implementations are provided:

* :class:`FullStateStore` keeps the states themselves and is exact;
* :class:`FingerprintStore` keeps only 64-bit hashes, trading a small
  (documented) collision risk for far lower memory usage — the standard
  bit-state/fingerprint trade-off of explicit-state model checkers.
"""

from __future__ import annotations

from typing import Set

from ..mp.state import GlobalState


class StateStore:
    """Interface of a visited-state store."""

    def add(self, state: GlobalState) -> bool:
        """Record ``state``; return True if it was not seen before."""
        raise NotImplementedError

    def __contains__(self, state: GlobalState) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FullStateStore(StateStore):
    """Exact store keeping every visited state."""

    def __init__(self) -> None:
        self._states: Set[GlobalState] = set()

    def add(self, state: GlobalState) -> bool:
        if state in self._states:
            return False
        self._states.add(state)
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return state in self._states

    def __len__(self) -> int:
        return len(self._states)


class FingerprintStore(StateStore):
    """Memory-light store keeping only state hashes.

    A hash collision makes the search believe an unvisited state was already
    seen, so verification results obtained with this store are best-effort.
    The bundled benchmarks use :class:`FullStateStore`; this class exists for
    exploring larger instances where memory is the binding constraint.
    """

    def __init__(self) -> None:
        self._fingerprints: Set[int] = set()

    def add(self, state: GlobalState) -> bool:
        # ``fingerprint()`` returns the hash cached at state-construction
        # time, so membership-then-add costs one set lookup, not two hashes.
        fingerprint = state.fingerprint()
        if fingerprint in self._fingerprints:
            return False
        self._fingerprints.add(fingerprint)
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return state.fingerprint() in self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)


class NullStateStore(StateStore):
    """Store used by stateless search: never remembers anything."""

    def add(self, state: GlobalState) -> bool:
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return False

    def __len__(self) -> int:
        return 0


def make_state_store(kind: str) -> StateStore:
    """Factory: ``"full"``, ``"fingerprint"`` or ``"none"``."""
    if kind == "full":
        return FullStateStore()
    if kind == "fingerprint":
        return FingerprintStore()
    if kind == "none":
        return NullStateStore()
    raise ValueError(f"unknown state store kind: {kind!r}")
