"""Visited-state stores for stateful search.

Three real implementations are provided:

* :class:`FullStateStore` keeps the states themselves and is exact;
* :class:`FingerprintStore` keeps only 64-bit hashes, trading a small
  (documented) collision risk for far lower memory usage — the standard
  bit-state/fingerprint trade-off of explicit-state model checkers;
* :class:`ShardedFingerprintStore` partitions the fingerprints across N
  shards by a mixed hash.  The routing function is a pure function of the
  fingerprint, so in the parallel search each worker can own one shard
  outright — membership tests and inserts for a shard never touch another
  worker's data, making per-shard operations lock-free.

The same routing is useful single-process: membership stays O(1) per shard
while shard sizes expose the partition for diagnostics.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..mp.state import GlobalState

_MASK64 = (1 << 64) - 1


def mix_fingerprint(fingerprint: int) -> int:
    """SplitMix64 finaliser over a (possibly negative) Python hash.

    Python's hash routinely leaves structure in the low bits (small ints
    hash to themselves), so routing by ``fingerprint % shards`` alone would
    skew the partition.  The finaliser diffuses every input bit across the
    64-bit output before the modulo.
    """
    z = fingerprint & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def shard_of(fingerprint: int, num_shards: int) -> int:
    """Shard index owning ``fingerprint`` in an ``num_shards``-way partition.

    Total and deterministic: every fingerprint maps to exactly one shard in
    ``range(num_shards)``, in every process that computes the same
    fingerprint (see :meth:`repro.mp.state.GlobalState.__reduce__` for when
    fingerprints agree across processes).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return mix_fingerprint(fingerprint) % num_shards


class StateStore:
    """Interface of a visited-state store."""

    def add(self, state: GlobalState) -> bool:
        """Record ``state``; return True if it was not seen before."""
        raise NotImplementedError

    def __contains__(self, state: GlobalState) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FullStateStore(StateStore):
    """Exact store keeping every visited state."""

    def __init__(self) -> None:
        self._states: Set[GlobalState] = set()

    def add(self, state: GlobalState) -> bool:
        if state in self._states:
            return False
        self._states.add(state)
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return state in self._states

    def __len__(self) -> int:
        return len(self._states)


class FingerprintStore(StateStore):
    """Memory-light store keeping only state hashes.

    A hash collision makes the search believe an unvisited state was already
    seen, so verification results obtained with this store are best-effort.
    The bundled benchmarks use :class:`FullStateStore`; this class exists for
    exploring larger instances where memory is the binding constraint.
    """

    def __init__(self) -> None:
        self._fingerprints: Set[int] = set()

    def add(self, state: GlobalState) -> bool:
        # ``fingerprint()`` returns the hash cached at state-construction
        # time, so membership-then-add costs one set lookup, not two hashes.
        fingerprint = state.fingerprint()
        if fingerprint in self._fingerprints:
            return False
        self._fingerprints.add(fingerprint)
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return state.fingerprint() in self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)


class ShardedFingerprintStore(StateStore):
    """Fingerprint store partitioned across ``num_shards`` hash shards.

    Functionally equivalent to :class:`FingerprintStore` (same collision
    trade-off), but membership is split into disjoint per-shard sets routed
    by :func:`shard_of`.  The partition is what the parallel search builds
    on: worker *i* of an *N*-worker search owns shard *i* and can test/insert
    its share of the fingerprints without synchronisation.  Instances pickle
    cleanly (plain sets of ints), so a shard can cross a process boundary.
    """

    def __init__(self, num_shards: int = 8) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards
        self._shards: Tuple[Set[int], ...] = tuple(set() for _ in range(num_shards))

    def shard_of(self, fingerprint: int) -> int:
        """Index of the shard owning ``fingerprint``."""
        return shard_of(fingerprint, self.num_shards)

    def add(self, state: GlobalState) -> bool:
        return self.add_fingerprint(state.fingerprint())

    def add_fingerprint(self, fingerprint: int) -> bool:
        """Record a raw fingerprint; return True if it was not seen before."""
        shard = self._shards[shard_of(fingerprint, self.num_shards)]
        if fingerprint in shard:
            return False
        shard.add(fingerprint)
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return self.contains_fingerprint(state.fingerprint())

    def contains_fingerprint(self, fingerprint: int) -> bool:
        """True if the raw fingerprint was recorded before."""
        return fingerprint in self._shards[shard_of(fingerprint, self.num_shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> Tuple[int, ...]:
        """Number of fingerprints held per shard, for balance diagnostics."""
        return tuple(len(shard) for shard in self._shards)

    def shard_contents(self, index: int) -> Set[int]:
        """The raw fingerprint set of one shard (not a copy)."""
        return self._shards[index]


class NullStateStore(StateStore):
    """Store used by stateless search: never remembers anything."""

    def add(self, state: GlobalState) -> bool:
        return True

    def __contains__(self, state: GlobalState) -> bool:
        return False

    def __len__(self) -> int:
        return 0


#: Store kinds accepted by :func:`make_state_store` (and the CLI's --store).
STORE_KINDS = ("full", "fingerprint", "sharded-fingerprint", "none")


def make_state_store(kind: str, shards: int = 8) -> StateStore:
    """Factory: ``"full"``, ``"fingerprint"``, ``"sharded-fingerprint"`` or ``"none"``.

    Args:
        kind: One of :data:`STORE_KINDS`.
        shards: Shard count for the sharded store (ignored by other kinds).
    """
    if kind == "full":
        return FullStateStore()
    if kind == "fingerprint":
        return FingerprintStore()
    if kind == "sharded-fingerprint":
        return ShardedFingerprintStore(num_shards=shards)
    if kind == "none":
        return NullStateStore()
    raise ValueError(f"unknown state store kind: {kind!r}")
