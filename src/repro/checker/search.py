"""State-space search engines.

The depth-first search below supports the four configurations used in the
paper's evaluation:

* stateful unreduced search (the regular-storage baseline of Table I),
* stateful search with a static partial-order reduction (SPOR, both tables),
* stateless search (the mode required by dynamic POR; the DPOR-specific
  exploration lives in :mod:`repro.por.dpor` and reuses the primitives here),
* bounded variants of all of the above for debugging.

A *reducer* is a callable that picks the subset of enabled executions to
explore in a state (the stubborn set).  The search hands it a
:class:`ReductionContext` exposing the successor function and the current
DFS stack so the reducer can apply the cycle (stack) proviso.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..engine.events import PROGRESS_INTERVAL, Observer, emit
from ..mp.protocol import Protocol
from ..mp.semantics import SuccessorEngine
from ..mp.state import GlobalState
from ..mp.transition import Execution
from .counterexample import Counterexample, Step
from .property import Invariant
from .result import SearchStatistics
from .statestore import StateStore, make_state_store


@dataclass
class SearchConfig:
    """Tunable knobs of the search.

    Attributes:
        stateful: Keep a visited-state store (stateful search); if False the
            search is stateless and only avoids cycles on the current path.
        state_store: ``"full"`` (exact) or ``"fingerprint"`` (hash-only).
        state_store_shards: Shard count when ``state_store`` is
            ``"sharded-fingerprint"`` (ignored by the other kinds).
        max_depth: Truncate paths longer than this many transitions.
        max_states: Abort once this many distinct states were stored.
        max_seconds: Abort after this wall-clock budget.
        stop_at_first_violation: Stop as soon as one counterexample is found
            (the paper's debugging experiments do exactly this).
        check_deadlocks: Treat states without enabled transitions in the
            *unreduced* transition set as violations.  Off by default since
            all bundled protocols terminate legitimately.
        engine_cache_capacity: LRU bound for the successor engine's
            enabled-set and successor caches in stateless searches; ``None``
            keeps them unbounded (appropriate when the reachable set fits in
            memory, which holds for all bundled instances).
        successor_engine: ``"object"`` runs the interned-object
            :class:`~repro.mp.semantics.SuccessorEngine`; ``"fast"``
            delegates to the packed table-compiled fast path
            (:mod:`repro.fastpath`) with identical verdicts and visited
            counts — the drop-in spelling for direct ``dfs_search`` /
            ``bfs_search`` callers (plan users select it via the
            ``successors`` axis instead).
        fastpath_memo_capacity: LRU bound for the packed fast path's
            per-transition guard/action memo tables and its property-verdict
            memo (per table; the fast-path analogue of
            ``engine_cache_capacity``).  ``None`` keeps them unbounded,
            which is fine for the bundled protocols' small local-state
            spaces; bound it when checking protocols whose local-state
            spaces grow with the exploration.
        chaos: Optional fault-plan spec (see :mod:`repro.chaos`) injected
            into parallel/swarm worker loops; ``None`` (production default)
            injects nothing.  Serial searches ignore it — there is no
            worker process to kill.
        supervise: Restart crashed workers and deterministically re-execute
            their lost work (parallel/swarm searches).  When False a worker
            death aborts the search with a structured
            :class:`~repro.parallel.worker.WorkerCrashError` instead.
        checkpoint_dir: Directory receiving level-barrier checkpoints
            (breadth-first searches only; depth-first engines reject it —
            a DFS has no durable barrier to serialise).
        checkpoint_every: Write a checkpoint every N completed levels;
            defaults to every level when ``checkpoint_dir`` is set.
        resume_from: Path of a checkpoint file (or checkpoint directory,
            resolving to its deepest checkpoint) to resume from.
    """

    stateful: bool = True
    state_store: str = "full"
    state_store_shards: int = 8
    max_depth: Optional[int] = None
    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    stop_at_first_violation: bool = True
    check_deadlocks: bool = False
    engine_cache_capacity: Optional[int] = None
    successor_engine: str = "object"
    fastpath_memo_capacity: Optional[int] = None
    chaos: Optional[str] = None
    supervise: bool = True
    checkpoint_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    resume_from: Optional[str] = None


@dataclass
class ReductionContext:
    """Information a reducer may use when choosing the explored subset.

    Attributes:
        state: The state being expanded.
        enabled: All enabled executions in ``state``.
        protocol: The protocol under verification.
        successor: Function computing the successor of an execution; results
            are cached by the successor engine so calling it is cheap.
        on_stack: True for states currently on the DFS stack; used for the
            cycle (stack) proviso.
        engine: The successor engine driving the search; reducers may
            consult its enabled-execution and successor caches directly.
    """

    state: GlobalState
    enabled: Tuple[Execution, ...]
    protocol: Protocol
    successor: Callable[[Execution], GlobalState]
    on_stack: Callable[[GlobalState], bool]
    engine: Optional[SuccessorEngine] = None


#: A reducer maps a reduction context to the subset of executions to explore.
Reducer = Callable[[ReductionContext], Tuple[Execution, ...]]


@dataclass
class SearchOutcome:
    """Raw outcome of a search, converted to a CheckResult by the facade.

    ``incomplete_reason`` distinguishes *why* an incomplete search stopped
    when the cause is not an ordinary budget: ``"worker crash"`` for an
    unrecovered worker death (partial statistics are still reported),
    ``"cancelled"`` for a preempted service job.  ``None`` otherwise.
    """

    verified: bool
    complete: bool
    counterexample: Optional[Counterexample]
    statistics: SearchStatistics
    deadlock_states: int = 0
    incomplete_reason: Optional[str] = None


@dataclass
class _Frame:
    """One entry of the explicit DFS stack."""

    state: GlobalState
    pending: Tuple[Execution, ...]
    next_index: int = 0
    via: Optional[Execution] = None
    successors: dict = field(default_factory=dict)


def _memoised_successor(engine: SuccessorEngine, frame: _Frame) -> Callable[[Execution], GlobalState]:
    """Per-frame successor memo, freed when the frame is popped.

    Keeps the proviso-check -> expansion reuse without retaining every edge
    for the whole search, which matters when the engine itself runs with
    its global caches disabled (stateful searches, see
    :meth:`SuccessorEngine.for_search`).
    """

    def compute(execution: Execution) -> GlobalState:
        cached = frame.successors.get(execution)
        if cached is None:
            cached = engine.successor(frame.state, execution)
            frame.successors[execution] = cached
        return cached

    return compute


def _path_from_stack(stack: List[_Frame], final: Optional[Tuple[Execution, GlobalState]],
                     property_name: str) -> Counterexample:
    """Rebuild the violating path from the DFS stack (plus the final step)."""
    initial = stack[0].state
    steps = []
    for frame in stack[1:]:
        steps.append(Step(execution=frame.via, state=frame.state))
    if final is not None:
        execution, state = final
        steps.append(Step(execution=execution, state=state))
    return Counterexample(initial_state=initial, steps=tuple(steps),
                          property_name=property_name)


def _fastpath_requested(
    config: SearchConfig, engine: Optional[SuccessorEngine], target: str
) -> bool:
    """Validate the ``successor_engine`` knob; True when the packed fast
    path (:mod:`repro.fastpath`) should run instead of this module."""
    if config.successor_engine == "object":
        return False
    if config.successor_engine != "fast":
        raise ValueError(
            f"unknown successor_engine {config.successor_engine!r} "
            "(expected 'object' or 'fast')"
        )
    if engine is not None:
        raise ValueError(
            "successor_engine='fast' compiles its own engine; pass a "
            f"FastSuccessorEngine to repro.fastpath.{target} instead"
        )
    return True


def _reject_checkpoint_knobs(config: SearchConfig, engine_name: str) -> None:
    """Depth-first engines have no level barrier to serialise; reject the
    checkpoint knobs loudly instead of silently not checkpointing."""
    if config.checkpoint_dir is not None or config.resume_from is not None:
        raise ValueError(
            f"{engine_name} does not support checkpoint/resume: only "
            "breadth-first searches have the level barrier the checkpoint "
            "format captures (use shape='bfs' or 'frontier')"
        )


def _maybe_span(telemetry, name: str, **attrs):
    """Phase span when telemetry is attached, else a no-op context.

    Local twin of :func:`repro.obs.telemetry.maybe_span`: the search
    engines must not import :mod:`repro.obs` at module scope (the engine
    package imports this module while initialising).
    """
    if telemetry is None:
        return nullcontext()
    return telemetry.span(name, **attrs)


def dfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    reducer: Optional[Reducer] = None,
    engine: Optional[SuccessorEngine] = None,
    observer: Optional[Observer] = None,
    telemetry=None,
) -> SearchOutcome:
    """Explore the state space depth-first and check an invariant.

    Args:
        protocol: The protocol instance to explore.
        invariant: The invariant to check in every reachable state.
        config: Search configuration; defaults to exhaustive stateful search.
        reducer: Optional partial-order reducer; ``None`` explores every
            enabled execution (unreduced search).
        engine: Optional pre-built successor engine (e.g. to share caches
            across several searches of the same protocol).
        observer: Optional event observer; receives periodic ``progress``
            ticks and ``violation-found`` events.
        telemetry: Optional :class:`~repro.obs.telemetry.RunTelemetry`;
            receives store-occupancy metrics at phase boundaries (never
            written per state).

    Returns:
        A :class:`SearchOutcome` with verdict, counterexample and statistics.
    """
    config = config or SearchConfig()
    _reject_checkpoint_knobs(config, "dfs_search")
    if _fastpath_requested(config, engine, "fast_dfs_search"):
        # Imported lazily: repro.fastpath builds on this module.
        from ..fastpath.search import fast_dfs_search

        return fast_dfs_search(protocol, invariant, config, reducer=reducer,
                               observer=observer, telemetry=telemetry)
    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is not None and engine.protocol is not protocol:
        raise ValueError("successor engine was built for a different protocol")
    engine = engine or SuccessorEngine.for_search(
        protocol, config.stateful, max_cache_entries=config.engine_cache_capacity
    )
    store: StateStore = make_state_store(
        config.state_store if config.stateful else "none",
        shards=config.state_store_shards,
    )
    initial = engine.initial_state()
    store.add(initial)
    statistics.states_visited = 1

    counterexample: Optional[Counterexample] = None
    verified = True
    complete = True
    deadlock_states = 0

    if not invariant.holds_in(initial, protocol):
        counterexample = Counterexample(initial_state=initial, steps=(),
                                        property_name=invariant.name)
        verified = False
        emit(observer, "violation-found", states_visited=1, depth=0)
        if config.stop_at_first_violation:
            statistics.elapsed_seconds = time.perf_counter() - start_time
            if telemetry is not None:
                telemetry.record_store(store)
            return SearchOutcome(False, False, counterexample, statistics)

    on_stack_states = {initial}

    def expand(frame_state: GlobalState, frame: _Frame) -> Tuple[Execution, ...]:
        """Compute the (possibly reduced) executions to explore from a state."""
        enabled = engine.enabled(frame_state)
        statistics.enabled_set_computations += 1
        if config.check_deadlocks and not enabled:
            nonlocal deadlock_states
            deadlock_states += 1
        if reducer is None or len(enabled) <= 1:
            statistics.full_expansions += 1
            return enabled
        context = ReductionContext(
            state=frame_state,
            enabled=enabled,
            protocol=protocol,
            successor=_memoised_successor(engine, frame),
            on_stack=lambda state: state in on_stack_states,
            engine=engine,
        )
        reduced = reducer(context)
        if len(reduced) < len(enabled):
            statistics.reduced_expansions += 1
        else:
            statistics.full_expansions += 1
        return reduced

    root = _Frame(state=initial, pending=())
    root.pending = expand(initial, root)
    stack: List[_Frame] = [root]

    while stack:
        if config.max_seconds is not None:
            if time.perf_counter() - start_time > config.max_seconds:
                complete = False
                break
        frame = stack[-1]
        if frame.next_index >= len(frame.pending):
            stack.pop()
            on_stack_states.discard(frame.state)
            continue
        execution = frame.pending[frame.next_index]
        frame.next_index += 1

        successor = frame.successors.get(execution)
        if successor is None:
            successor = engine.successor(frame.state, execution)
        statistics.transitions_executed += 1

        if config.stateful:
            if not store.add(successor):
                statistics.revisits += 1
                continue
            statistics.states_visited = len(store)
        else:
            if successor in on_stack_states:
                statistics.revisits += 1
                continue
            statistics.states_visited += 1
        if observer is not None and statistics.states_visited % PROGRESS_INTERVAL == 0:
            emit(observer, "progress", states_visited=statistics.states_visited,
                 transitions_executed=statistics.transitions_executed)

        if not invariant.holds_in(successor, protocol):
            verified = False
            counterexample = _path_from_stack(stack, (execution, successor), invariant.name)
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(stack))
            if config.stop_at_first_violation:
                complete = False
                break

        if config.max_states is not None and statistics.states_visited >= config.max_states:
            complete = False
            break
        if config.max_depth is not None and len(stack) > config.max_depth:
            complete = False
            continue

        child = _Frame(state=successor, pending=(), via=execution)
        child.pending = expand(successor, child)
        stack.append(child)
        on_stack_states.add(successor)
        statistics.max_depth = max(statistics.max_depth, len(stack) - 1)

    statistics.elapsed_seconds = time.perf_counter() - start_time
    if telemetry is not None:
        telemetry.record_store(store)
    return SearchOutcome(
        verified=verified,
        complete=complete and verified if config.stop_at_first_violation else complete,
        counterexample=counterexample,
        statistics=statistics,
        deadlock_states=deadlock_states,
    )


def bfs_search(
    protocol: Protocol,
    invariant: Invariant,
    config: Optional[SearchConfig] = None,
    engine: Optional[SuccessorEngine] = None,
    observer: Optional[Observer] = None,
    telemetry=None,
) -> SearchOutcome:
    """Breadth-first stateful search; finds shortest counterexamples.

    Partial-order reduction is not supported here (the cycle proviso relies
    on a DFS stack); the breadth-first engine exists for debugging, where a
    shortest violating path is often easier to read.  The optional
    ``observer`` receives one ``level-completed`` event per frontier level
    plus ``violation-found`` events.
    """
    config = config or SearchConfig()
    if _fastpath_requested(config, engine, "fast_bfs_search"):
        if config.checkpoint_dir is not None or config.resume_from is not None:
            raise ValueError(
                "checkpoint/resume is not supported by the packed fast "
                "path; run with successors='object'"
            )
        # Imported lazily: repro.fastpath builds on this module.
        from ..fastpath.search import fast_bfs_search

        return fast_bfs_search(protocol, invariant, config, observer=observer,
                               telemetry=telemetry)
    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is not None and engine.protocol is not protocol:
        raise ValueError("successor engine was built for a different protocol")
    engine = engine or SuccessorEngine.for_search(protocol, stateful=True)
    initial = engine.initial_state()
    store = make_state_store(config.state_store, shards=config.state_store_shards)

    # Parent edges: state -> None (initial) or (predecessor, execution,
    # exec_index).  The execution slot is None for edges restored from a
    # checkpoint; ``rebuild`` recomputes it from the index on demand
    # (enabled order is deterministic), so executions never need pickling.
    if config.resume_from is not None:
        from .checkpoint import CheckpointError, load_checkpoint

        resumed = load_checkpoint(config.resume_from)
        states = resumed.states
        if not states or states[0] != initial:
            raise CheckpointError(
                f"cannot resume from {config.resume_from!r}: its initial "
                "state does not match the protocol under check (was the "
                "checkpoint written for a different model?)"
            )
        for state in states:
            store.add(state)
        parents = {}
        for index, edge in enumerate(resumed.edges):
            if edge is None:
                parents[states[index]] = None
            else:
                parent_index, exec_index = edge
                parents[states[index]] = (states[parent_index], None, exec_index)
        statistics = resumed.statistics
        statistics.states_visited = len(store)
        frontier = [states[index] for index in resumed.frontier]
        depth = resumed.depth
        # Shift the clock back so elapsed/budget accounting spans the
        # whole run, not just the resumed leg.
        start_time = time.perf_counter() - statistics.elapsed_seconds
    else:
        store.add(initial)
        statistics.states_visited = 1
        parents = {initial: None}
        frontier = [initial]
        depth = 0

    counterexample: Optional[Counterexample] = None
    verified = True
    complete = True
    peak_frontier = max(1, len(frontier))
    checkpoint_interval = max(1, config.checkpoint_every or 1)

    def write_level_checkpoint() -> None:
        from .checkpoint import Checkpoint, write_checkpoint

        states = list(parents.keys())
        index_of = {state: index for index, state in enumerate(states)}
        edges = []
        for state in states:
            edge = parents[state]
            if edge is None:
                edges.append(None)
            else:
                predecessor, _execution, exec_index = edge
                edges.append((index_of[predecessor], exec_index))
        statistics.elapsed_seconds = time.perf_counter() - start_time
        path = write_checkpoint(
            Checkpoint(
                depth=depth,
                statistics=statistics,
                states=states,
                edges=edges,
                frontier=[index_of[state] for state in frontier],
                meta={"property": invariant.name, "engine": "bfs"},
            ),
            config.checkpoint_dir,
        )
        emit(observer, "checkpoint-written", depth=depth,
             states_visited=statistics.states_visited, path=path)

    def record_telemetry() -> None:
        if telemetry is None:
            return
        telemetry.record_store(store)
        telemetry.metrics.gauge(
            "frontier_peak", "largest BFS frontier level"
        ).set(peak_frontier)

    def rebuild(state: GlobalState) -> Counterexample:
        steps = []
        cursor = state
        while parents[cursor] is not None:
            predecessor, execution, exec_index = parents[cursor]
            if execution is None:  # edge restored from a checkpoint
                execution = engine.enabled(predecessor)[exec_index]
            steps.append(Step(execution=execution, state=cursor))
            cursor = predecessor
        steps.reverse()
        return Counterexample(initial_state=initial, steps=tuple(steps),
                              property_name=invariant.name)

    if config.resume_from is None and not invariant.holds_in(initial, protocol):
        emit(observer, "violation-found", states_visited=1, depth=0)
        statistics.elapsed_seconds = time.perf_counter() - start_time
        record_telemetry()
        return SearchOutcome(False, False, rebuild(initial), statistics)

    while frontier:
        if config.max_seconds is not None:
            if time.perf_counter() - start_time > config.max_seconds:
                complete = False
                break
        if config.max_depth is not None and depth >= config.max_depth:
            complete = False
            break
        next_frontier = []
        for state in frontier:
            enabled = engine.enabled(state)
            statistics.enabled_set_computations += 1
            statistics.full_expansions += 1
            for exec_index, execution in enumerate(enabled):
                successor = engine.successor(state, execution)
                statistics.transitions_executed += 1
                if not store.add(successor):
                    statistics.revisits += 1
                    continue
                statistics.states_visited = len(store)
                parents[successor] = (state, execution, exec_index)
                if not invariant.holds_in(successor, protocol):
                    verified = False
                    counterexample = rebuild(successor)
                    emit(observer, "violation-found",
                         states_visited=statistics.states_visited, depth=depth + 1)
                    if config.stop_at_first_violation:
                        statistics.elapsed_seconds = time.perf_counter() - start_time
                        record_telemetry()
                        return SearchOutcome(False, False, counterexample, statistics)
                if config.max_states is not None and statistics.states_visited >= config.max_states:
                    complete = False
                    next_frontier = []
                    statistics.max_depth = max(statistics.max_depth, depth + 1)
                    break
                next_frontier.append(successor)
            else:
                continue
            break
        frontier = next_frontier
        peak_frontier = max(peak_frontier, len(frontier))
        depth += 1
        # Count only levels that discovered states: ``max_depth`` is the
        # depth (in edges) of the deepest state found, matching the DFS
        # engines; the final empty level is bookkeeping, not depth.
        if frontier:
            statistics.max_depth = max(statistics.max_depth, depth)
            emit(observer, "level-completed", depth=depth,
                 new_states=len(frontier),
                 states_visited=statistics.states_visited)
            if config.checkpoint_dir is not None and depth % checkpoint_interval == 0:
                write_level_checkpoint()

    statistics.elapsed_seconds = time.perf_counter() - start_time
    record_telemetry()
    return SearchOutcome(verified=verified, complete=complete,
                         counterexample=counterexample, statistics=statistics)


def ndfs_search(
    protocol: Protocol,
    prop,
    config: Optional[SearchConfig] = None,
    reducer: Optional[Reducer] = None,
    engine: Optional[SuccessorEngine] = None,
    observer: Optional[Observer] = None,
    telemetry=None,
) -> SearchOutcome:
    """Nested depth-first search for acceptance cycles (liveness checking).

    Checks an :class:`~repro.checker.property.Eventually` goal (or any
    duck-typed property exposing ``prunes``/``accepting`` hooks) with the
    classic CVWY nested DFS as refined by Schwoon–Esparza: a *blue* DFS
    explores the reachable graph, keeping the current stack *cyan*; when an
    accepting state is about to be popped (postorder), a *red* DFS searches
    its closure for a cyan state, which closes an accepting cycle through
    the stack.  The blue phase additionally reports a violation early when
    an edge hits a cyan state and either endpoint is accepting — for
    ``Eventually`` goals (where every non-pruned state is accepting) that
    early check alone finds every cycle, and the red phase only fires for
    generic acceptance predicates.

    Semantics of a violation: a *lasso* (stem + cycle) along which the goal
    never holds, or — under stutter-extension semantics — a terminal
    accepting state (the run ends without reaching the goal; encoded as an
    empty cycle).  States satisfying the goal prune their subtrees: the
    monitor automaton for ``not eventually p`` dies at a ``p``-state.

    Partial-order reduction is not supported: the stubborn-set cycle
    proviso is a property of one DFS stack, and the nested search walks the
    graph twice with different stacks — pass ``reducer=None`` (anything
    else raises).  The search is stateful by construction (blue/red marks
    are the algorithm), so ``config.stateful`` must be True; the store kind
    chooses between exact state keys (``"full"``) and fingerprint keys
    (``"fingerprint"`` / ``"sharded-fingerprint"``, the usual collision
    trade-off).

    Always stops at the first violation (one lasso is a complete refutation;
    ``stop_at_first_violation=False`` does not change that).
    """
    config = config or SearchConfig()
    _reject_checkpoint_knobs(config, "ndfs_search")
    if reducer is not None:
        raise ValueError(
            "nested DFS does not support partial-order reduction: the "
            "stubborn-set cycle proviso is defined over a single DFS "
            "stack, which the nested search does not have; run the "
            "liveness check unreduced"
        )
    if not config.stateful:
        raise ValueError(
            "nested DFS is stateful by construction (the blue/red marks "
            "are the algorithm); config.stateful must be True"
        )
    if config.state_store not in ("full", "fingerprint", "sharded-fingerprint"):
        raise ValueError(
            f"nested DFS needs a real visited-state store, got "
            f"state_store={config.state_store!r}"
        )
    if _fastpath_requested(config, engine, "fast_ndfs_search"):
        # Imported lazily: repro.fastpath builds on this module.
        from ..fastpath.search import fast_ndfs_search

        return fast_ndfs_search(protocol, prop, config, observer=observer,
                                telemetry=telemetry)

    statistics = SearchStatistics()
    start_time = time.perf_counter()

    if engine is not None and engine.protocol is not protocol:
        raise ValueError("successor engine was built for a different protocol")
    engine = engine or SuccessorEngine.for_search(
        protocol, config.stateful, max_cache_entries=config.engine_cache_capacity
    )

    exact = config.state_store == "full"

    def key(state: GlobalState):
        return state if exact else state.fingerprint()

    def prunes(state: GlobalState) -> bool:
        return bool(prop.prunes(state, protocol))

    def accepting(state: GlobalState) -> bool:
        return bool(prop.accepting(state, protocol))

    def expand(state: GlobalState) -> Tuple[Execution, ...]:
        enabled = engine.enabled(state)
        statistics.enabled_set_computations += 1
        statistics.full_expansions += 1
        return enabled

    initial = engine.initial_state()
    discovered = {key(initial)}
    statistics.states_visited = 1

    if prunes(initial):
        # The goal already holds initially; every run satisfies it.
        statistics.elapsed_seconds = time.perf_counter() - start_time
        return SearchOutcome(True, True, None, statistics)

    cyan = {key(initial)}
    blue = set()
    red = set()
    complete = True

    def lasso(stack: List[_Frame], final: Tuple[Execution, GlobalState],
              extra: List[_Frame], cycle_key) -> Counterexample:
        """Build a lasso counterexample: blue-stack stem (+ optional red-path
        frames) + the closing edge; the cycle starts where ``cycle_key``
        first appears on the blue stack."""
        steps = [Step(execution=frame.via, state=frame.state)
                 for frame in stack[1:]]
        steps.extend(Step(execution=frame.via, state=frame.state)
                     for frame in extra)
        execution, state = final
        steps.append(Step(execution=execution, state=state))
        path_states = [stack[0].state] + [frame.state for frame in stack[1:]]
        cycle_start = next(
            index for index, path_state in enumerate(path_states)
            if key(path_state) == cycle_key
        )
        return Counterexample(
            initial_state=stack[0].state, steps=tuple(steps),
            property_name=prop.name, cycle_start=cycle_start,
        )

    def stutter(stack: List[_Frame],
                final: Optional[Tuple[Execution, GlobalState]]) -> Counterexample:
        """A terminal accepting state: a lasso with an empty cycle."""
        steps = [Step(execution=frame.via, state=frame.state)
                 for frame in stack[1:]]
        if final is not None:
            execution, state = final
            steps.append(Step(execution=execution, state=state))
        return Counterexample(
            initial_state=stack[0].state, steps=tuple(steps),
            property_name=prop.name, cycle_start=len(steps),
        )

    def red_search(stack: List[_Frame]) -> Optional[Counterexample]:
        """Red DFS from the accepting seed at the top of the blue stack,
        looking for any cyan state (which closes a cycle through the
        stack).  Red marks persist across seeds, keeping the nested search
        linear overall."""
        seed = stack[-1]
        red_stack = [_Frame(state=seed.state, pending=expand(seed.state))]
        while red_stack:
            if config.max_seconds is not None:
                if time.perf_counter() - start_time > config.max_seconds:
                    return None  # caller notices the elapsed budget
            frame = red_stack[-1]
            if frame.next_index >= len(frame.pending):
                red_stack.pop()
                continue
            execution = frame.pending[frame.next_index]
            frame.next_index += 1
            successor = engine.successor(frame.state, execution)
            statistics.transitions_executed += 1
            skey = key(successor)
            if skey in cyan:
                return lasso(stack, (execution, successor),
                             red_stack[1:], skey)
            if skey in red:
                continue
            if skey not in discovered:
                discovered.add(skey)
                statistics.states_visited = len(discovered)
            if prunes(successor):
                # Dead monitor: no accepting run continues through here.
                red.add(skey)
                continue
            red.add(skey)
            child = _Frame(state=successor, pending=expand(successor),
                           via=execution)
            red_stack.append(child)
        red.add(key(seed.state))
        return None

    def finish(verified: bool, is_complete: bool,
               counterexample: Optional[Counterexample]) -> SearchOutcome:
        statistics.elapsed_seconds = time.perf_counter() - start_time
        if telemetry is not None:
            telemetry.metrics.gauge(
                "state_store_size", "visited states/fingerprints held"
            ).set(len(discovered))
            telemetry.metrics.gauge(
                "ndfs_red_states", "states marked red by the nested search"
            ).set(len(red))
        return SearchOutcome(verified, is_complete, counterexample, statistics)

    root = _Frame(state=initial, pending=expand(initial))
    stack: List[_Frame] = [root]
    if not root.pending and accepting(initial):
        emit(observer, "violation-found", states_visited=1, depth=0)
        return finish(False, False, stutter(stack, None))

    while stack:
        if config.max_seconds is not None:
            if time.perf_counter() - start_time > config.max_seconds:
                return finish(True, False, None)
        frame = stack[-1]
        if frame.next_index >= len(frame.pending):
            if accepting(frame.state):
                with _maybe_span(telemetry, "red-phase", stack_depth=len(stack)):
                    counterexample = red_search(stack)
                if counterexample is not None:
                    emit(observer, "violation-found",
                         states_visited=statistics.states_visited,
                         depth=len(stack))
                    return finish(False, False, counterexample)
                if config.max_seconds is not None:
                    if time.perf_counter() - start_time > config.max_seconds:
                        return finish(True, False, None)
            stack.pop()
            cyan.discard(key(frame.state))
            blue.add(key(frame.state))
            continue
        execution = frame.pending[frame.next_index]
        frame.next_index += 1

        successor = engine.successor(frame.state, execution)
        statistics.transitions_executed += 1
        skey = key(successor)

        if skey in cyan and (accepting(frame.state) or accepting(successor)):
            # Early (blue-phase) detection: the edge closes a cycle through
            # the cyan stack and the cycle contains an accepting state.
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(stack))
            return finish(False, False,
                          lasso(stack, (execution, successor), [], skey))
        if skey in blue or skey in cyan:
            statistics.revisits += 1
            continue
        if skey not in discovered:
            discovered.add(skey)
            statistics.states_visited = len(discovered)
            if observer is not None and statistics.states_visited % PROGRESS_INTERVAL == 0:
                emit(observer, "progress",
                     states_visited=statistics.states_visited,
                     transitions_executed=statistics.transitions_executed)
        if prunes(successor):
            # Goal reached: the monitor dies, the subtree needs no visit.
            blue.add(skey)
            continue
        if config.max_states is not None and statistics.states_visited >= config.max_states:
            return finish(True, False, None)
        if config.max_depth is not None and len(stack) > config.max_depth:
            complete = False
            continue

        child = _Frame(state=successor, pending=(), via=execution)
        child.pending = expand(successor)
        if not child.pending and accepting(successor):
            # Terminal state that never reached the goal: under
            # stutter-extension semantics the run loops here forever.
            emit(observer, "violation-found",
                 states_visited=statistics.states_visited, depth=len(stack))
            return finish(False, False, stutter(stack, (execution, successor)))
        stack.append(child)
        cyan.add(skey)
        statistics.max_depth = max(statistics.max_depth, len(stack) - 1)

    return finish(True, complete, None)
