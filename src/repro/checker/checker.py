"""The model checker facade — a thin shim over the composable engine layer.

:class:`ModelChecker` ties together a protocol, a property and a search
configuration.  Since the plan/registry redesign the real API is the
:class:`~repro.engine.plan.CheckPlan` (search shape × reduction × store ×
backend × workers) resolved by :mod:`repro.engine.registry`; the
:class:`Strategy` enum survives as a compatibility shim whose members map
onto equivalent plans via :func:`plan_for_strategy`:

* ``Strategy.UNREDUCED`` — plain exhaustive DFS (``shape="dfs"``,
  ``reduction="none"``), the ``+fw`` baseline;
* ``Strategy.SPOR`` — static POR with the pre-computed dependence relation
  (``reduction="spor"``, the LPOR analogue of ``+fw.spor``);
* ``Strategy.SPOR_NET`` — static POR with necessary-enabling-transition
  handling (``reduction="spor-net"``, the LPOR-NET analogue);
* ``Strategy.DPOR`` — stateless dynamic POR (``reduction="dpor"``), the
  configuration Basset uses for single-message models in Table I;
* ``Strategy.BFS`` — stateful breadth-first search (``shape="bfs"``).

``Strategy.DFS`` and ``Strategy.STUBBORN`` are explicit attribute aliases of
``UNREDUCED`` and ``SPOR`` named after their search shape; the strings
``"dfs"`` and ``"stubborn"`` are likewise accepted by the constructor and
the CLI (see :data:`STRATEGY_ALIASES`).

With ``CheckerOptions.workers > 1`` plan resolution picks the parallel
backend automatically: the frontier-parallel BFS for ``shape="bfs"``, the
work-stealing DFS for the DFS-shaped strategies.  Combinations no engine
supports (e.g. DPOR with ``workers > 1``, whose backtrack sets are mutated
up the serial stack and do not survive subtree donation) raise a structured
:class:`~repro.engine.plan.UnsupportedPlanError` naming the offending axis.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..engine.events import Observer
from ..engine.plan import CheckPlan, UnsupportedPlanError
from ..mp.protocol import Protocol
from .property import Invariant
from .result import CheckResult
from .search import SearchConfig


#: Explicit alias resolution for the shim layer: alternative strategy
#: spellings -> canonical member values.  Kept out of the enum body so the
#: members are never value-aliased (two members silently sharing a string
#: made the enum fragile: editing one literal would split the alias into a
#: distinct member without any test noticing).
STRATEGY_ALIASES = {
    "dfs": "unreduced",
    "stubborn": "spor",
}


class _StrategyMeta(enum.EnumMeta):
    """Metaclass making subscript lookup honour the alias table.

    ``Strategy["DFS"]`` regressed to a ``KeyError`` when the value-aliased
    members were replaced by post-body attribute aliases (plain attributes
    are invisible to ``EnumMeta.__getitem__``).  Route failed subscript
    lookups through :data:`STRATEGY_ALIASES` (case-insensitively, matching
    attribute-alias spelling) so ``Strategy["DFS"] is Strategy.UNREDUCED``
    again, without value-aliasing the members themselves.
    """

    def __getitem__(cls, name):
        try:
            return super().__getitem__(name)
        except KeyError:
            canonical = STRATEGY_ALIASES.get(str(name).lower())
            if canonical is not None:
                return cls(canonical)
            raise


class Strategy(enum.Enum, metaclass=_StrategyMeta):
    """Available search strategies (the legacy, pre-plan API).

    ``DFS`` and ``STUBBORN`` are attribute aliases assigned after the class
    body (``Strategy.DFS is Strategy.UNREDUCED``, ``Strategy.STUBBORN is
    Strategy.SPOR``) so call sites can name the search shape the parallel
    backends care about; the strings ``"dfs"`` and ``"stubborn"`` are
    resolved through :data:`STRATEGY_ALIASES` by the constructor, and the
    names ``"DFS"`` and ``"STUBBORN"`` by subscript lookup
    (``Strategy["DFS"]``).
    """

    UNREDUCED = "unreduced"
    SPOR = "spor"
    SPOR_NET = "spor-net"
    DPOR = "dpor"
    BFS = "bfs"

    @classmethod
    def _missing_(cls, value):
        canonical = STRATEGY_ALIASES.get(value)
        if canonical is not None:
            return cls(canonical)
        return None


# Attribute aliases: identical objects, not value-aliased members, so
# iteration and __members__ stay canonical while identity holds.
Strategy.DFS = Strategy.UNREDUCED
Strategy.STUBBORN = Strategy.SPOR


@dataclass
class CheckerOptions:
    """Options orthogonal to the strategy choice.

    Attributes:
        search: Low-level search configuration (bounds, statefulness).
        seed_heuristic: Name of the seed-transition heuristic for SPOR
            (``"opposite-transaction"``, ``"transaction"``, ``"first"``,
            ``"fewest-dependents"``).
        workers: In-cell worker process count; 1 keeps every strategy
            serial.  ``Strategy.BFS`` uses the frontier-parallel search;
            the DFS-shaped strategies (``UNREDUCED``/``DFS``, ``SPOR``/
            ``STUBBORN``, ``SPOR_NET``) use the work-stealing parallel DFS.
            ``Strategy.DPOR`` rejects ``workers > 1``: its backtrack sets
            follow the serial stack and cannot be donated across workers.
    """

    search: Optional[SearchConfig] = field(default_factory=SearchConfig)
    seed_heuristic: str = "opposite-transaction"
    workers: int = 1

    def __post_init__(self) -> None:
        # The default is a real factory now; explicit ``search=None`` is
        # still accepted (it was the historical default value) and means
        # "use the defaults".
        if self.search is None:
            self.search = SearchConfig()


def plan_for_strategy(
    strategy: Union[Strategy, str], options: Optional[CheckerOptions] = None
) -> CheckPlan:
    """Translate a legacy ``(Strategy, CheckerOptions)`` pair into a plan.

    This is the compatibility shim's whole contract: the returned plan
    resolves to the engine the old if-chain in ``ModelChecker.run`` would
    have dispatched to, with identical semantics — BFS is always stateful,
    DPOR always stateless, stores only apply to stateful searches.
    """
    strategy = Strategy(strategy)
    options = options or CheckerOptions()
    search = options.search
    if strategy is Strategy.BFS:
        shape, reduction, stateful = "bfs", "none", True
    elif strategy is Strategy.DPOR:
        shape, reduction, stateful = "dfs", "dpor", False
    else:
        reductions = {"unreduced": "none", "spor": "spor", "spor-net": "spor-net"}
        shape, reduction, stateful = "dfs", reductions[strategy.value], search.stateful
    return CheckPlan(
        shape=shape,
        reduction=reduction,
        store=search.state_store if stateful else "none",
        backend="auto",
        # The legacy facade treated any workers <= 1 as serial (0 was a
        # documented "no pool" spelling); preserve that through the shim.
        workers=max(1, options.workers),
        stateful=stateful,
        successors=search.successor_engine,
        seed_heuristic=options.seed_heuristic,
        store_shards=search.state_store_shards,
        max_depth=search.max_depth,
        max_states=search.max_states,
        max_seconds=search.max_seconds,
        stop_at_first_violation=search.stop_at_first_violation,
        check_deadlocks=search.check_deadlocks,
        engine_cache_capacity=search.engine_cache_capacity,
        fastpath_memo_capacity=search.fastpath_memo_capacity,
    )


def _plans_derivable_from(options: CheckerOptions):
    """Every plan the shim could build from ``options``, one per strategy.

    Strategies the options are invalid for (e.g. a ``"none"`` store with
    the always-stateful BFS) are skipped rather than raised: this feeds a
    diagnostic comparison, not a run.
    """
    for strategy in Strategy:
        try:
            yield plan_for_strategy(strategy, options)
        except UnsupportedPlanError:
            continue


class ModelChecker:
    """Checks an invariant of an MP protocol under a chosen plan or strategy."""

    def __init__(self, protocol: Protocol, invariant: Invariant,
                 options: Optional[CheckerOptions] = None,
                 registry=None) -> None:
        self.protocol = protocol
        self.invariant = invariant
        self.options = options or CheckerOptions()
        self.registry = registry

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run_plan(self, plan: CheckPlan,
                 observer: Optional[Observer] = None) -> CheckResult:
        """Resolve ``plan`` against the registry and run it.

        A plan is self-contained: it does not inherit anything from the
        ``CheckerOptions`` this checker was built with (those configure the
        legacy :meth:`run` shim only).  Mixing the two is almost always a
        migration mistake, so it warns rather than silently dropping the
        options — put workers/bounds/heuristics on the plan itself, or
        build it with :func:`plan_for_strategy`.
        """
        # Checked at call time (not construction) so post-construction
        # mutation of ``self.options`` is caught too.  No warning when the
        # options carry nothing beyond the defaults, or when the plan
        # already incorporates them (it matches what plan_for_strategy
        # derives from these very options for some strategy) — that is the
        # recommended migration pattern, not a mistake.  Options that are
        # invalid for a given strategy (e.g. a stateless store combined
        # with BFS) simply don't produce a comparison plan, and the backend
        # is compared in its "auto" form so re-running a *resolved* plan
        # (``CheckResult.plan``, backend concretised) is recognised too.
        requested = replace(plan, backend="auto")
        if self.options != CheckerOptions() and not any(
            requested == derived
            for derived in _plans_derivable_from(self.options)
        ):
            warnings.warn(
                "ModelChecker.run_plan ignores the CheckerOptions passed to "
                "the constructor; set workers/bounds/seed_heuristic on the "
                "CheckPlan itself, or build the plan with "
                "plan_for_strategy(strategy, options)",
                UserWarning,
                stacklevel=2,
            )
        return self._execute_plan(plan, observer)

    def run(self, strategy: Strategy = Strategy.UNREDUCED,
            observer: Optional[Observer] = None) -> CheckResult:
        """Run the search under a legacy ``strategy`` and return the verdict.

        Compatibility shim: builds the equivalent :class:`CheckPlan` (from
        the strategy *and* this checker's options) and funnels through the
        same engine path — one validation/diagnostic layer for both APIs.
        """
        return self._execute_plan(
            plan_for_strategy(strategy, self.options), observer
        )

    def _execute_plan(self, plan: CheckPlan,
                      observer: Optional[Observer]) -> CheckResult:
        # Imported lazily: the registry builds on the checker's siblings.
        from ..engine.registry import run_plan

        return run_plan(
            self.protocol,
            self.invariant,
            plan,
            observer=observer,
            registry=self.registry,
        )

    def check(self, strategy: Strategy = Strategy.UNREDUCED) -> bool:
        """Convenience wrapper returning only the boolean verdict."""
        return self.run(strategy).verified


def check_protocol(
    protocol: Protocol,
    invariant: Invariant,
    strategy: Strategy = Strategy.UNREDUCED,
    options: Optional[CheckerOptions] = None,
) -> CheckResult:
    """One-shot helper: build a :class:`ModelChecker` and run it."""
    return ModelChecker(protocol, invariant, options).run(strategy)


def check_plan(
    protocol: Protocol,
    invariant: Invariant,
    plan: CheckPlan,
    observer: Optional[Observer] = None,
) -> CheckResult:
    """One-shot helper for the plan API, mirroring :func:`check_protocol`."""
    return ModelChecker(protocol, invariant).run_plan(plan, observer=observer)
