"""The model checker facade.

:class:`ModelChecker` ties together a protocol, a property and a search
strategy, mirroring how MP-Basset is invoked with the ``+fw.spor`` /
``+fw.dpor`` flags (Appendix I):

* ``Strategy.UNREDUCED`` — plain exhaustive search;
* ``Strategy.SPOR`` — static POR with the pre-computed dependence relation
  (the LPOR analogue);
* ``Strategy.SPOR_NET`` — static POR with necessary-enabling-transition
  handling of disabled transitions (the LPOR-NET analogue);
* ``Strategy.DPOR`` — stateless dynamic POR (Flanagan–Godefroid style), the
  configuration Basset uses for single-message models in Table I;
* ``Strategy.BFS`` — stateful breadth-first search; with
  ``CheckerOptions.workers > 1`` each level is farmed across a pool of
  shard-owning workers (see :mod:`repro.parallel`).

``Strategy.DFS`` and ``Strategy.STUBBORN`` are aliases of ``UNREDUCED`` and
``SPOR`` named after their search shape; with ``CheckerOptions.workers > 1``
every DFS-shaped strategy (unreduced, SPOR, SPOR-NET) runs under the
work-stealing parallel engine of :mod:`repro.parallel.dfs`.  DPOR is the
one strategy that stays serial: its backtrack sets are mutated up the
serial stack and do not survive subtree donation, so ``workers > 1`` is
rejected with a diagnostic rather than silently ignored.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from ..mp.protocol import Protocol
from .property import Invariant
from .result import CheckResult
from .search import SearchConfig, SearchOutcome, bfs_search, dfs_search


class Strategy(enum.Enum):
    """Available search strategies.

    ``DFS`` and ``STUBBORN`` are aliases (``DFS is UNREDUCED``,
    ``STUBBORN is SPOR``) so call sites can name the search shape the
    parallel engines care about; the strings ``"dfs"`` and ``"stubborn"``
    are likewise accepted by the constructor and the CLI.
    """

    UNREDUCED = "unreduced"
    DFS = "unreduced"
    SPOR = "spor"
    STUBBORN = "spor"
    SPOR_NET = "spor-net"
    DPOR = "dpor"
    BFS = "bfs"

    @classmethod
    def _missing_(cls, value):
        aliases = {"dfs": cls.UNREDUCED, "stubborn": cls.SPOR}
        return aliases.get(value)


@dataclass
class CheckerOptions:
    """Options orthogonal to the strategy choice.

    Attributes:
        search: Low-level search configuration (bounds, statefulness).
        seed_heuristic: Name of the seed-transition heuristic for SPOR
            (``"opposite-transaction"``, ``"transaction"``, ``"first"``,
            ``"fewest-dependents"``).
        workers: In-cell worker process count; 1 keeps every strategy
            serial.  ``Strategy.BFS`` uses the frontier-parallel search;
            the DFS-shaped strategies (``UNREDUCED``/``DFS``, ``SPOR``/
            ``STUBBORN``, ``SPOR_NET``) use the work-stealing parallel DFS.
            ``Strategy.DPOR`` rejects ``workers > 1``: its backtrack sets
            follow the serial stack and cannot be donated across workers.
    """

    search: SearchConfig = None  # type: ignore[assignment]
    seed_heuristic: str = "opposite-transaction"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.search is None:
            self.search = SearchConfig()


class ModelChecker:
    """Checks an invariant of an MP protocol under a chosen strategy."""

    def __init__(self, protocol: Protocol, invariant: Invariant,
                 options: Optional[CheckerOptions] = None) -> None:
        self.protocol = protocol
        self.invariant = invariant
        self.options = options or CheckerOptions()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, strategy: Strategy = Strategy.UNREDUCED) -> CheckResult:
        """Run the search under ``strategy`` and return the verdict."""
        if strategy is Strategy.BFS:
            return self._run_bfs()
        if strategy is Strategy.DPOR:
            if self.options.workers > 1:
                raise ValueError(
                    f"workers={self.options.workers} is not supported for DPOR: "
                    "dynamic POR mutates backtrack sets up the serial DFS stack, "
                    "so its subtrees cannot be donated to other workers; run "
                    "DPOR with workers=1, or choose Strategy.DFS / "
                    "Strategy.STUBBORN for a work-stealing parallel search"
                )
            return self._run_dpor()
        if strategy in (Strategy.SPOR, Strategy.SPOR_NET):
            return self._run_spor(use_net=strategy is Strategy.SPOR_NET)
        return self._run_unreduced()

    def check(self, strategy: Strategy = Strategy.UNREDUCED) -> bool:
        """Convenience wrapper returning only the boolean verdict."""
        return self.run(strategy).verified

    # ------------------------------------------------------------------ #
    # Strategy implementations
    # ------------------------------------------------------------------ #
    def _result(self, outcome: SearchOutcome, strategy: Strategy,
                stateful: bool) -> CheckResult:
        return CheckResult(
            protocol_name=self.protocol.name,
            property_name=self.invariant.name,
            strategy=strategy.value,
            verified=outcome.verified,
            complete=outcome.complete,
            counterexample=outcome.counterexample,
            statistics=outcome.statistics,
            stateful=stateful,
        )

    def _run_dfs(self, reducer=None) -> SearchOutcome:
        """Serial or work-stealing DFS, depending on ``options.workers``."""
        if self.options.workers > 1:
            if not self.options.search.stateful:
                raise ValueError(
                    f"workers={self.options.workers} requires a stateful "
                    "search: the work-stealing DFS deduplicates via a shared "
                    "claim table, which has no stateless mode; run stateless "
                    "searches with workers=1"
                )
            # Imported lazily: repro.parallel builds on this module's siblings.
            from ..parallel import parallel_dfs_search

            return parallel_dfs_search(
                self.protocol,
                self.invariant,
                self.options.search,
                workers=self.options.workers,
                reducer=reducer,
            )
        return dfs_search(
            self.protocol, self.invariant, self.options.search, reducer=reducer
        )

    def _run_unreduced(self) -> CheckResult:
        outcome = self._run_dfs()
        return self._result(outcome, Strategy.UNREDUCED, self.options.search.stateful)

    def _run_bfs(self) -> CheckResult:
        if self.options.workers > 1:
            # Imported lazily: repro.parallel builds on this module's siblings.
            from ..parallel import parallel_bfs_search

            outcome = parallel_bfs_search(
                self.protocol,
                self.invariant,
                self.options.search,
                workers=self.options.workers,
            )
        else:
            outcome = bfs_search(self.protocol, self.invariant, self.options.search)
        return self._result(outcome, Strategy.BFS, stateful=True)

    def _run_spor(self, use_net: bool) -> CheckResult:
        # Imported lazily to keep the layering acyclic (por depends on mp only).
        from ..por.dependence import DependenceRelation
        from ..por.seed import make_seed_heuristic
        from ..por.stubborn import StubbornSetProvider

        dependence = DependenceRelation.precompute(self.protocol)
        heuristic = make_seed_heuristic(self.options.seed_heuristic)
        provider = StubbornSetProvider(
            protocol=self.protocol,
            dependence=dependence,
            seed_heuristic=heuristic,
            use_net=use_net,
        )
        outcome = self._run_dfs(reducer=provider.reduce)
        strategy = Strategy.SPOR_NET if use_net else Strategy.SPOR
        return self._result(outcome, strategy, self.options.search.stateful)

    def _run_dpor(self) -> CheckResult:
        from ..por.dpor import DporSearch

        search_config = replace(self.options.search, stateful=False)
        dpor = DporSearch(self.protocol, config=search_config)
        outcome = dpor.run(self.invariant)
        return self._result(outcome, Strategy.DPOR, stateful=False)


def check_protocol(
    protocol: Protocol,
    invariant: Invariant,
    strategy: Strategy = Strategy.UNREDUCED,
    options: Optional[CheckerOptions] = None,
) -> CheckResult:
    """One-shot helper: build a :class:`ModelChecker` and run it."""
    return ModelChecker(protocol, invariant, options).run(strategy)
