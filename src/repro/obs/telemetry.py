"""Per-run telemetry: one bundle of metrics + spans every engine writes.

:class:`RunTelemetry` is what ``run_plan`` hands down through every
engine: a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.spans.SpanTracer` bound to the run's observer, and a
set of recorder helpers that translate the structures engines already
keep (``SearchStatistics``, fingerprint stores, fast-path memo tables,
work-stealing claim stripes) into named metric series at phase
boundaries.  Nothing here runs per visited state.

``telemetry=None`` is always legal — every engine accepts it and every
recording site is guarded — so direct callers of the search functions
pay nothing.  :func:`maybe_span` packages that guard for phase spans.
"""

from __future__ import annotations

import sys
import time
from contextlib import nullcontext
from typing import Dict, Optional

from .metrics import MetricsRegistry
from .spans import SpanTracer

__all__ = ["RunTelemetry", "maybe_span"]


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB, if measurable."""
    try:
        import resource
    except ImportError:  # non-POSIX fallback
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # reported in bytes there
        usage //= 1024
    return int(usage)


class RunTelemetry:
    """Metrics registry + span tracer for one check run."""

    def __init__(
        self,
        observer=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.observer = observer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(observer=observer)
        self.started_ts = time.time()

    def span(self, name: str, **attrs):
        """Bracket a phase: ``with telemetry.span("search"): ...``."""
        return self.tracer.span(name, **attrs)

    # -- recorder helpers -------------------------------------------------
    # Each translates one existing runtime structure into metric series.
    # They are called once per run/phase, never per state.

    def record_statistics(self, statistics, engine: Optional[str] = None) -> None:
        """Fold a ``SearchStatistics`` into the core search metrics."""
        labels = {"engine": engine} if engine else {}
        counters = self.metrics
        counters.counter(
            "states_visited", "distinct states visited"
        ).inc(statistics.states_visited, **labels)
        counters.counter(
            "transitions_executed", "transitions fired during exploration"
        ).inc(statistics.transitions_executed, **labels)
        counters.counter(
            "state_revisits", "already-visited states re-reached"
        ).inc(statistics.revisits, **labels)
        counters.gauge("max_depth", "deepest explored depth").set(
            statistics.max_depth, **labels
        )
        counters.gauge(
            "elapsed_seconds", "search wall clock", unit="s"
        ).set(statistics.elapsed_seconds, **labels)
        if statistics.elapsed_seconds > 0:
            counters.gauge(
                "states_per_second", "visit throughput", unit="1/s"
            ).set(statistics.states_visited / statistics.elapsed_seconds, **labels)
        self.record_reduction(statistics)

    def record_reduction(self, statistics) -> None:
        """Record stubborn-set effectiveness from a ``SearchStatistics``."""
        reduced = statistics.reduced_expansions
        full = statistics.full_expansions
        enabled = statistics.enabled_set_computations
        if not reduced and not full and not enabled:
            return  # no reduction machinery ran at all
        self.metrics.counter(
            "reduced_expansions", "expansions using a proper stubborn subset"
        ).inc(reduced)
        self.metrics.counter(
            "full_expansions", "expansions falling back to the full enabled set"
        ).inc(full)
        self.metrics.counter(
            "enabled_set_computations", "stubborn/enabled set computations"
        ).inc(statistics.enabled_set_computations)
        total = reduced + full
        if total:
            self.metrics.gauge(
                "reduction_ratio", "reduced expansions / all expansions"
            ).set(reduced / total)

    def record_store(self, store, name: str = "state_store") -> None:
        """Record visited-store occupancy (per shard when sharded)."""
        if store is None:
            return
        shard_sizes = getattr(store, "shard_sizes", None)
        if callable(shard_sizes):
            sizes = shard_sizes()
            if sizes:  # unsharded packed stores report None
                gauge = self.metrics.gauge(
                    f"{name}_shard_size", "fingerprints per store shard"
                )
                for shard, size in enumerate(sizes):
                    gauge.set(size, shard=shard)
        try:
            size = len(store)
        except TypeError:
            return
        self.metrics.gauge(f"{name}_size", "visited states/fingerprints held").set(size)

    def record_fastpath(self, engine) -> None:
        """Record packed fast-path table occupancy and memo behaviour."""
        if engine is None:
            return
        table_sizes = getattr(engine, "table_sizes", None)
        if callable(table_sizes):
            gauge = self.metrics.gauge(
                "fastpath_table_size", "interning/memo table entries"
            )
            for table, size in table_sizes().items():
                gauge.set(size, table=table)
        memo_stats = getattr(engine, "memo_stats", None)
        if callable(memo_stats):
            stats = memo_stats()
            self.metrics.counter(
                "fastpath_memo_hits", "guard/action memo hits"
            ).inc(stats.get("hits", 0))
            self.metrics.counter(
                "fastpath_memo_misses", "guard/action memo misses"
            ).inc(stats.get("misses", 0))
            self.metrics.counter(
                "fastpath_memo_evictions", "LRU evictions from bounded memos"
            ).inc(stats.get("evictions", 0))

    def record_worksteal(
        self,
        steals: int = 0,
        publishes: int = 0,
        claim_table=None,
    ) -> None:
        """Record work-stealing traffic and claim-table stripe occupancy."""
        self.metrics.counter(
            "worksteal_steals", "frames stolen from sibling deques"
        ).inc(steals)
        self.metrics.counter(
            "worksteal_publishes", "frames published for stealing"
        ).inc(publishes)
        if claim_table is not None:
            stripe_sizes = getattr(claim_table, "stripe_sizes", None)
            if callable(stripe_sizes):
                gauge = self.metrics.gauge(
                    "claim_table_stripe_size", "claimed fingerprints per stripe"
                )
                for stripe, size in enumerate(stripe_sizes()):
                    gauge.set(size, stripe=stripe)

    def record_worker(self, worker: int, stats: Dict) -> None:
        """Record one worker's final report as labelled series."""
        for key in ("claimed", "transitions_executed", "revisits"):
            if key in stats:
                self.metrics.counter(
                    f"worker_{key}", f"per-worker {key.replace('_', ' ')}"
                ).inc(stats[key], worker=worker)

    # -- snapshot ---------------------------------------------------------

    def snapshot(self) -> Dict:
        """The JSON-able run report attached to ``CheckResult.telemetry``."""
        report = {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.snapshot(),
        }
        peak = _peak_rss_kb()
        if peak is not None:
            report["peak_rss_kb"] = peak
        try:
            import tracemalloc

            if tracemalloc.is_tracing():
                _current, traced_peak = tracemalloc.get_traced_memory()
                report["tracemalloc_peak_kb"] = traced_peak // 1024
        except ImportError:
            pass
        return report


def maybe_span(telemetry: Optional[RunTelemetry], name: str, **attrs):
    """``telemetry.span(...)`` when telemetry is attached, else a no-op.

    Keeps the zero-overhead contract at call sites::

        with maybe_span(telemetry, "compile", protocol=protocol.name):
            engine = FastSuccessorEngine(protocol)
    """
    if telemetry is None:
        return nullcontext()
    return telemetry.span(name, **attrs)
