"""A small, dependency-free metrics registry: counters, gauges, histograms.

The registry is the write-side of the observability layer.  Engines (and
the coordinator loops of the parallel backends) record what happened —
states visited, memo hits, steal counts, shard occupancy — and the
read-side (:meth:`MetricsRegistry.snapshot`) renders everything as one
JSON-able dict that travels on :class:`~repro.checker.result.CheckResult`
and into ``BENCH_*.json`` payloads.

Design constraints, in order:

* **Zero hot-loop presence.**  Nothing in this module is called per
  state; engines populate metrics at phase boundaries from counters they
  already keep (``SearchStatistics``, memo tables, claim stripes).
* **Labels without a dependency.**  Each instrument keys its series by a
  sorted ``(key, value)`` tuple of string labels, Prometheus-style, so a
  single ``fingerprint_store_shard_size`` gauge can carry one series per
  shard.
* **JSON all the way down.**  ``snapshot()`` output round-trips through
  ``json.dumps`` untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: exponential, covering microseconds..minutes
#: for timings and 1..1e6 for size-ish observations equally badly but
#: predictably.  Callers with real distributions pass their own.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0, 10000.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> Dict[str, str]:
    return {k: v for k, v in key}


class _Instrument:
    """Shared name/description/labelled-series plumbing."""

    kind = "instrument"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self._series: Dict[LabelKey, object] = {}

    def labelled(self) -> List[Tuple[Dict[str, str], object]]:
        return [(_labels_dict(key), value) for key, value in sorted(self._series.items())]


class Counter(_Instrument):
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def inc(self, amount: int = 1, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> int:
        return int(self._series.get(_label_key(labels), 0))

    def total(self) -> int:
        return sum(self._series.values())

    def snapshot(self) -> Dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "unit": self.unit,
            "values": [
                {"labels": labels, "value": value} for labels, value in self.labelled()
            ],
            "total": self.total(),
        }


class Gauge(_Instrument):
    """A point-in-time value (occupancy, depth, rate) split by labels."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> Optional[float]:
        return self._series.get(_label_key(labels))

    def snapshot(self) -> Dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "unit": self.unit,
            "values": [
                {"labels": labels, "value": value} for labels, value in self.labelled()
            ],
        }


class _HistogramSeries:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, bucket_count: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bucket_counts = [0] * (bucket_count + 1)  # +1 = overflow


class Histogram(_Instrument):
    """A bucketed distribution (per-level timings, span durations, ...)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, description, unit)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.total += value
        if series.minimum is None or value < series.minimum:
            series.minimum = value
        if series.maximum is None or value > series.maximum:
            series.maximum = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[index] += 1
                break
        else:
            series.bucket_counts[-1] += 1

    def series(self, **labels) -> Optional[_HistogramSeries]:
        return self._series.get(_label_key(labels))

    def snapshot(self) -> Dict:
        values = []
        for labels, series in self.labelled():
            values.append(
                {
                    "labels": labels,
                    "count": series.count,
                    "sum": series.total,
                    "min": series.minimum,
                    "max": series.maximum,
                    "mean": (series.total / series.count) if series.count else None,
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(self.buckets, series.bucket_counts)
                    ]
                    + [{"le": "inf", "count": series.bucket_counts[-1]}],
                }
            )
        return {
            "kind": self.kind,
            "description": self.description,
            "unit": self.unit,
            "values": values,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` return the
    existing instrument when the name is already registered (descriptions
    given later do not overwrite the first), so independent recording
    sites can share a series without coordination.  Registering the same
    name as two different instrument kinds is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, cls, name: str, *args, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, *args, **kwargs)
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, description: str = "", unit: str = "") -> Counter:
        return self._get(Counter, name, description, unit)

    def gauge(self, name: str, description: str = "", unit: str = "") -> Gauge:
        return self._get(Gauge, name, description, unit)

    def histogram(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, description, unit, buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict:
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }
