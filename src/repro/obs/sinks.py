"""Event sinks: durable captures of the engine observer stream.

:class:`JsonlSink` is an observer that appends one JSON object per event
to a file (or any writable stream), stamping each with the wall-clock
receive time.  The resulting ``.jsonl`` capture is the interchange format
of the observability layer: ``python -m repro trace`` converts it to a
Chrome trace-event file, and :func:`read_events` loads (and validates) it
back for programmatic analysis.

Record schema, one per line::

    {"kind": "<event kind>", "ts": <unix seconds>, "payload": {...}}

Payload values that are not JSON-native (counterexample states, packed
tuples) are stringified rather than dropped, so a capture never fails
mid-run because an engine put something rich in a payload.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["JsonlSink", "read_events", "validate_event_record"]


class JsonlSink:
    """An observer writing every event as one JSON line.

    Accepts a path (opened and owned, closed by :meth:`close`) or an
    already-open text stream (borrowed, flushed but never closed).  Usable
    as a context manager.
    """

    def __init__(self, target: Union[str, Path, io.TextIOBase]) -> None:
        if isinstance(target, (str, Path)):
            self._stream = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.path = str(target) if isinstance(target, (str, Path)) else None
        self.events_written = 0
        self.closed = False

    def on_event(self, event) -> None:
        if self.closed:
            return
        record = {"kind": event.kind, "ts": time.time(), "payload": event.payload}
        self._stream.write(json.dumps(record, default=str) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        if not self.closed:
            self._stream.flush()

    def close(self) -> None:
        if self.closed:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self.closed = True

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def validate_event_record(record: Dict, line_number: int = 0) -> Dict:
    """Check one decoded JSONL record against the sink schema."""
    where = f"line {line_number}: " if line_number else ""
    if not isinstance(record, dict):
        raise ValueError(f"{where}event record is not an object")
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ValueError(f"{where}event record has no string 'kind'")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)):
        raise ValueError(f"{where}event record has no numeric 'ts'")
    payload = record.get("payload")
    if not isinstance(payload, dict):
        raise ValueError(f"{where}event record has no object 'payload'")
    return record


def read_events(path: Union[str, Path]) -> List[Dict]:
    """Load a JSONL event capture, validating every record.

    Raises:
        FileNotFoundError: If the capture does not exist.
        ValueError: On malformed JSON or schema violations, naming the line.
    """
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {number}: invalid JSON: {error}") from error
            events.append(validate_event_record(record, number))
    return events
