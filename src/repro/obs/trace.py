"""Chrome trace-event export for JSONL event captures.

Converts a capture written by :class:`repro.obs.sinks.JsonlSink` into the
Chrome trace-event JSON format (the ``{"traceEvents": [...]}`` flavour),
loadable in ``chrome://tracing`` and Perfetto.  The mapping:

========================  =============================================
event kind                trace event
========================  =============================================
``span-finished``         ``"X"`` complete slice (phase spans)
``progress``              ``"C"`` counter on the coordinator track
``level-completed``       ``"C"`` counter (frontier depth/new states)
``worker-telemetry``      ``"C"`` counter on that worker's track
``worker-report``         ``"X"`` worker-lifetime slice + final counters
``violation-found``       ``"i"`` instant (global scope)
``worker-stalled``        ``"i"`` instant on that worker's track
``search-started``        ``"M"`` metadata + run clock zero candidate
========================  =============================================

All timestamps are microseconds relative to the earliest wall-clock time
in the capture, so traces start at t=0 regardless of when the run
happened.  Worker tracks get thread ids ``worker id + 1``; the
coordinator (and every serial engine) is thread 0.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "chrome_trace",
    "convert_file",
    "validate_chrome_trace",
    "COORDINATOR_TID",
    "TRACE_PID",
]

TRACE_PID = 1
COORDINATOR_TID = 0

_VALID_PHASES = {"X", "C", "i", "M", "B", "E"}


def _numeric_args(payload: Dict) -> Dict:
    return {
        key: value
        for key, value in payload.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _worker_tid(payload: Dict) -> int:
    worker = payload.get("worker")
    if isinstance(worker, int):
        return worker + 1
    return COORDINATOR_TID


def chrome_trace(events: Iterable[Dict]) -> Dict:
    """Convert JSONL event records into a Chrome trace-event document."""
    records = list(events)

    # Clock zero: earliest wall time seen anywhere in the capture,
    # including span starts (which precede their span-finished record).
    candidates: List[float] = []
    for record in records:
        candidates.append(float(record["ts"]))
        payload = record.get("payload", {})
        start_ts = payload.get("start_ts")
        if isinstance(start_ts, (int, float)):
            candidates.append(float(start_ts))
    t0 = min(candidates) if candidates else 0.0

    def us(ts: float) -> int:
        return max(0, int(round((ts - t0) * 1e6)))

    trace_events: List[Dict] = []
    tids = {COORDINATOR_TID}
    search_started_ts: Optional[float] = None
    run_name = "repro"

    for record in records:
        kind = record["kind"]
        ts = float(record["ts"])
        payload = record.get("payload", {})

        if kind == "search-started":
            search_started_ts = ts
            engine = payload.get("engine")
            protocol = payload.get("protocol")
            if engine:
                run_name = f"repro check [{engine}]"
            trace_events.append(
                {
                    "name": "search-started",
                    "ph": "i",
                    "ts": us(ts),
                    "pid": TRACE_PID,
                    "tid": COORDINATOR_TID,
                    "s": "g",
                    "args": {
                        k: v
                        for k, v in payload.items()
                        if isinstance(v, (str, int, float, bool, dict))
                    },
                }
            )
            if protocol:
                run_name += f" {protocol}"
        elif kind == "span-finished":
            start_ts = float(payload.get("start_ts", ts))
            elapsed = float(payload.get("elapsed_seconds", 0.0))
            tid = _worker_tid(payload)
            tids.add(tid)
            args = {
                k: v
                for k, v in payload.items()
                if k not in ("span", "start_ts", "elapsed_seconds")
                and isinstance(v, (str, int, float, bool))
            }
            trace_events.append(
                {
                    "name": str(payload.get("span", "span")),
                    "ph": "X",
                    "ts": us(start_ts),
                    "dur": max(0, int(round(elapsed * 1e6))),
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": args,
                }
            )
        elif kind == "span-started":
            # Slices are built from span-finished alone; starts only
            # contribute to the clock zero above.
            continue
        elif kind in ("progress", "level-completed"):
            name = "states" if kind == "progress" else "frontier"
            args = _numeric_args(payload)
            if args:
                trace_events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": us(ts),
                        "pid": TRACE_PID,
                        "tid": COORDINATOR_TID,
                        "args": args,
                    }
                )
        elif kind == "worker-telemetry":
            tid = _worker_tid(payload)
            tids.add(tid)
            args = {
                k: v for k, v in _numeric_args(payload).items() if k != "worker"
            }
            if args:
                trace_events.append(
                    {
                        "name": f"worker-{payload.get('worker', '?')}",
                        "ph": "C",
                        "ts": us(ts),
                        "pid": TRACE_PID,
                        "tid": tid,
                        "args": args,
                    }
                )
        elif kind == "worker-report":
            tid = _worker_tid(payload)
            tids.add(tid)
            start = search_started_ts if search_started_ts is not None else ts
            trace_events.append(
                {
                    "name": f"worker-{payload.get('worker', '?')} active",
                    "ph": "X",
                    "ts": us(start),
                    "dur": max(0, int(round((ts - start) * 1e6))),
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": _numeric_args(payload),
                }
            )
        elif kind in ("violation-found", "worker-stalled", "search-finished"):
            tid = _worker_tid(payload)
            tids.add(tid)
            trace_events.append(
                {
                    "name": kind,
                    "ph": "i",
                    "ts": us(ts),
                    "pid": TRACE_PID,
                    "tid": tid,
                    "s": "g" if kind != "worker-stalled" else "t",
                    "args": _numeric_args(payload),
                }
            )
        else:
            # Unknown/future kinds degrade to instants rather than being
            # dropped, so a newer capture still renders on an older tool.
            trace_events.append(
                {
                    "name": kind,
                    "ph": "i",
                    "ts": us(ts),
                    "pid": TRACE_PID,
                    "tid": COORDINATOR_TID,
                    "s": "t",
                    "args": _numeric_args(payload),
                }
            )

    metadata: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": COORDINATOR_TID,
            "args": {"name": run_name},
        }
    ]
    for tid in sorted(tids):
        label = "coordinator" if tid == COORDINATOR_TID else f"worker-{tid - 1}"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": label},
            }
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": "repro-trace/1", "source_events": len(records)},
    }


def validate_chrome_trace(document: Dict) -> int:
    """Validate a converted document; returns the trace-event count.

    Checks the structural invariants Perfetto/chrome://tracing rely on:
    a ``traceEvents`` list whose entries carry a phase, name, pid and
    tid, with numeric non-negative ``ts``/``dur`` where the phase
    requires them.

    Raises:
        ValueError: Naming the first offending event.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document is not an object")
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        raise ValueError("trace document has no traceEvents list")
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where} has invalid phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where} has no string name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where} has no integer {field}")
        if phase in ("X", "C", "i", "B", "E"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where} has invalid ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} has invalid dur {dur!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise ValueError(f"{where} has non-object args")
    return len(trace_events)


def convert_file(
    source: Union[str, Path], destination: Union[str, Path]
) -> int:
    """Convert a JSONL capture file into a Chrome trace file.

    Returns the validated trace-event count.
    """
    from .sinks import read_events

    document = chrome_trace(read_events(source))
    count = validate_chrome_trace(document)
    Path(destination).write_text(json.dumps(document, indent=1) + "\n")
    return count
