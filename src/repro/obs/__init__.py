"""Observability layer: metrics, phase spans, event sinks, trace export.

Grown on top of the engine observer/event spine (PR 4): every engine
already emits one stream of :class:`~repro.engine.events.EngineEvent`;
this package adds the instruments that make a run explainable —

* :mod:`repro.obs.metrics` — counters/gauges/histograms with labels;
* :mod:`repro.obs.spans` — nested phase spans over the event stream;
* :mod:`repro.obs.sinks` — JSONL capture of the event stream;
* :mod:`repro.obs.trace` — Chrome trace-event export (Perfetto-loadable);
* :mod:`repro.obs.telemetry` — the per-run bundle engines write through.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import JsonlSink, read_events, validate_event_record
from .spans import SPAN_RECORD_CAP, SpanTracer
from .telemetry import RunTelemetry, maybe_span
from .trace import chrome_trace, convert_file, validate_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlSink",
    "read_events",
    "validate_event_record",
    "SPAN_RECORD_CAP",
    "SpanTracer",
    "RunTelemetry",
    "maybe_span",
    "chrome_trace",
    "convert_file",
    "validate_chrome_trace",
]
