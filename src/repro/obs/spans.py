"""Phase-span tracing over the engine event stream.

A :class:`SpanTracer` wraps the existing observer spine: entering a span
emits a ``span-started`` event, leaving it emits ``span-finished`` with
the wall-clock start and the measured duration, and the tracer keeps an
in-memory record of finished spans for the run report.  The Chrome
trace-event exporter (:mod:`repro.obs.trace`) builds its ``"X"`` slices
from ``span-finished`` payloads alone, so a JSONL event capture is a
complete trace without any tracer state surviving the run.

Spans nest (compile → search → red-phase → CE-replay); the tracer tracks
the current depth so renderers can indent without re-deriving nesting
from timestamps.  The in-memory record is capped — red-phase spans fire
once per accepting state in nested DFS — and the cap is reported as a
``dropped`` count rather than silently truncating.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from ..engine.events import emit

__all__ = ["SpanTracer", "SPAN_RECORD_CAP"]

#: Finished spans kept in memory per tracer; the event stream still sees
#: every span regardless.
SPAN_RECORD_CAP = 1024


class SpanTracer:
    """Nested phase spans, emitted as events and recorded for reports."""

    def __init__(
        self,
        observer=None,
        max_records: int = SPAN_RECORD_CAP,
    ) -> None:
        self.observer = observer
        self.max_records = max_records
        self.finished: List[Dict] = []
        self.dropped = 0
        self._depth = 0

    @contextmanager
    def span(self, name: str, **attrs):
        """Context manager bracketing one phase.

        Emits ``span-started`` on entry and ``span-finished`` on exit
        (also on exceptional exit, so a crashing phase still closes its
        slice).  Yields the attribute dict so the body can attach results
        discovered mid-phase (``attrs["states"] = n``).
        """
        start_ts = time.time()
        start = time.perf_counter()
        depth = self._depth
        self._depth += 1
        emit(self.observer, "span-started", span=name, ts=start_ts, depth=depth, **attrs)
        try:
            yield attrs
        finally:
            self._depth -= 1
            elapsed = time.perf_counter() - start
            self.record(name, start_ts, elapsed, depth=depth, **attrs)

    def record(
        self,
        name: str,
        start_ts: float,
        elapsed_seconds: float,
        depth: int = 0,
        **attrs,
    ) -> None:
        """Record (and emit) an already-measured span.

        Used by the context manager and by sites that time a phase with
        their own clocks (worker lifetimes reconstructed coordinator-side).
        """
        emit(
            self.observer,
            "span-finished",
            span=name,
            start_ts=start_ts,
            elapsed_seconds=elapsed_seconds,
            depth=depth,
            **attrs,
        )
        if len(self.finished) < self.max_records:
            record = {
                "span": name,
                "start_ts": start_ts,
                "elapsed_seconds": elapsed_seconds,
                "depth": depth,
            }
            if attrs:
                record["attrs"] = dict(attrs)
            self.finished.append(record)
        else:
            self.dropped += 1

    def elapsed(self, name: str) -> Optional[float]:
        """Total recorded seconds spent in spans called ``name``."""
        matching = [r["elapsed_seconds"] for r in self.finished if r["span"] == name]
        return sum(matching) if matching else None

    def snapshot(self) -> Dict:
        return {"finished": list(self.finished), "dropped": self.dropped}
