"""Section II-C — the interleaving blow-up of single-message encodings.

The paper's only quantitative claim outside the two tables is the analytical
bound of Section II-C: replacing a quorum transition consuming ``l`` messages
by single-message transitions blows the interleaving bound up from
``k! * k`` to ``(k + l)! * (k + l)``, a factor of at least ``(k + l)^2``
(169 for the smallest meaningful Paxos instance).  This module reproduces
the analytical numbers and pairs them with measured state counts: for a
sweep of small Paxos settings the unreduced state graph of the
single-message model is compared against the quorum model.
"""

from __future__ import annotations

import pytest

from repro.analysis.blowup import (
    blowup_factor,
    blowup_lower_bound,
    paxos_blowup_bound,
    paxos_smallest_instance_example,
)
from repro.checker import Strategy
from repro.protocols.catalog import paxos_entry
from repro.protocols.paxos import PaxosConfig

from .conftest import run_check

TABLE = "Section II-C — single-message blow-up (measured, unreduced search)"
COLUMNS = ("Quorum model", "Single-message model")

SETTINGS = [
    PaxosConfig(1, 2, 1),
    PaxosConfig(1, 3, 1),
    PaxosConfig(2, 2, 1),
]
SETTING_IDS = [config.setting_label for config in SETTINGS]


def test_analytical_bounds(benchmark):
    """The closed-form numbers quoted in Section II-C."""

    def compute():
        example = paxos_smallest_instance_example()
        rows = []
        # Quorum transitions consume at least two messages; the paper's
        # (k + l)^2 lower bound is stated for that regime.
        for concurrent in range(1, 7):
            for quorum in range(2, 5):
                rows.append(
                    (
                        concurrent,
                        quorum,
                        blowup_factor(concurrent, quorum),
                        blowup_lower_bound(concurrent, quorum),
                    )
                )
        return example, rows

    example, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert example.bound == 169
    for _concurrent, _quorum, factor, lower in rows:
        assert factor >= lower
    benchmark.extra_info["paxos_example_bound"] = example.bound


@pytest.mark.parametrize("config", SETTINGS, ids=SETTING_IDS)
def test_measured_blowup(benchmark, table_registry, config):
    """Measured counterpart: unreduced state counts, quorum vs single-message."""
    entry = paxos_entry(config.proposers, config.acceptors, config.learners)

    def measure():
        quorum = run_check(entry.quorum_model(), entry.invariant, Strategy.UNREDUCED)
        single = run_check(entry.single_model(), entry.invariant, Strategy.UNREDUCED)
        return quorum, single

    quorum, single = benchmark.pedantic(measure, rounds=1, iterations=1)
    table_registry.declare_table(TABLE, COLUMNS)
    table_registry.record(TABLE, f"Paxos {config.setting_label}", COLUMNS[0], quorum,
                          entry.invariant.name)
    table_registry.record(TABLE, f"Paxos {config.setting_label}", COLUMNS[1], single,
                          entry.invariant.name)

    measured_ratio = (
        single.statistics.states_visited / quorum.statistics.states_visited
    )
    benchmark.extra_info["quorum_states"] = quorum.statistics.states_visited
    benchmark.extra_info["single_states"] = single.statistics.states_visited
    benchmark.extra_info["measured_ratio"] = round(measured_ratio, 2)
    benchmark.extra_info["analytical_upper_bound"] = paxos_blowup_bound(config)

    # The measured blow-up must show the predicted direction and stay below
    # the (very loose) analytical worst case.
    assert single.statistics.states_visited >= quorum.statistics.states_visited
    assert measured_ratio <= paxos_blowup_bound(config)
