"""Benchmark — parallel exploration vs. the serial loops.

Measures both parallel axes of :mod:`repro.parallel` on small cells:

* frontier-parallel BFS against serial BFS on one cell (the shard-owning
  worker design pays a per-level barrier, so on small cells and few cores
  it documents overhead rather than speedup — the numbers are recorded to
  track the trajectory as cells and machines grow);
* the cell-parallel sweep pool against the serial sweep loop over several
  independent cells (the embarrassingly parallel axis).

The companion assertions keep the benchmark honest: parallel runs must
report exactly the serial visited-state counts and verdicts.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.checker.search import bfs_search
from repro.engine import CollectingObserver
from repro.parallel import CellSpec, parallel_bfs_search, run_cells
from repro.protocols.catalog import multicast_entry, storage_entry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="frontier-parallel search requires the fork start method",
)

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

TABLE = "Parallel exploration (workers=%d)" % WORKERS
COLUMNS = ("Serial BFS", "Parallel BFS")


@pytest.mark.parametrize("mode", COLUMNS)
def test_frontier_parallel_bfs(benchmark, table_registry, mode):
    """One cell explored breadth-first, serially vs. across workers."""
    entry = storage_entry(3, 1)
    invariant = entry.invariant
    # Both engines feed the same observer stream; the benchmark consumes it
    # for per-level shape instead of a private stat path.
    observer = CollectingObserver()

    def serial():
        return bfs_search(entry.quorum_model(), invariant, observer=observer)

    def parallel():
        return parallel_bfs_search(
            entry.quorum_model(), invariant, workers=WORKERS, observer=observer
        )

    outcome = benchmark.pedantic(
        serial if mode == "Serial BFS" else parallel, rounds=1, iterations=1
    )
    assert outcome.verified
    assert outcome.statistics.states_visited > 0
    levels = [e for e in observer.events if e.kind == "level-completed"]
    assert levels, "every BFS engine reports its levels on the event stream"
    benchmark.extra_info["states"] = outcome.statistics.states_visited
    benchmark.extra_info["levels"] = len(levels)
    benchmark.extra_info["widest_level"] = max(
        e.payload["new_states"] for e in levels
    )
    from repro.checker.result import CheckResult

    result = CheckResult(
        protocol_name=entry.description,
        property_name=invariant.name,
        strategy="bfs" if mode == "Serial BFS" else f"bfs x{WORKERS}",
        verified=outcome.verified,
        complete=outcome.complete,
        counterexample=outcome.counterexample,
        statistics=outcome.statistics,
    )
    table_registry.declare_table(TABLE, COLUMNS)
    table_registry.record(TABLE, entry.description, mode, result, invariant.name)


SWEEP_SPECS = (
    CellSpec(key="multicast-2-1-0-1"),
    CellSpec(key="multicast-3-0-1-1"),
    CellSpec(key="storage-3-1"),
    CellSpec(key="paxos-2-2-1"),
)


@pytest.mark.parametrize("pool_workers", [1, WORKERS], ids=["serial-loop", "pool"])
def test_cell_parallel_sweep(benchmark, pool_workers):
    """The same cell grid swept serially vs. across a process pool."""
    records = benchmark.pedantic(
        lambda: run_cells(SWEEP_SPECS, workers=pool_workers), rounds=1, iterations=1
    )
    assert len(records) == len(SWEEP_SPECS)
    assert all(record["ok"] for record in records)
    benchmark.extra_info["cells"] = len(records)
    benchmark.extra_info["total_states"] = sum(
        record["states_visited"] for record in records
    )
