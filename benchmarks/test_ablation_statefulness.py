"""Ablation — stateful vs stateless search ("behind the numbers", Section V-B).

The paper observes that the benefit of stateful over stateless search
becomes significant only once the state space is large, while on small
instances stateless search can be competitive because it pays no
state-comparison overhead and revisits few states.  This ablation measures
both modes (unreduced and with static POR) on a small and a medium workload
and records the visited-state counts.
"""

from __future__ import annotations

import pytest

from repro.checker import Strategy
from repro.protocols.catalog import multicast_entry, paxos_entry, storage_entry

from .conftest import run_check

TABLE = "Ablation — stateful vs stateless search"
COLUMNS = (
    "Stateful unreduced",
    "Stateless unreduced",
    "Stateful SPOR-NET",
    "Stateless SPOR-NET",
)

ENTRIES = (
    multicast_entry(3, 0, 1, 1),
    paxos_entry(1, 3, 1),
    storage_entry(2, 1),
)
ENTRY_IDS = [entry.key for entry in ENTRIES]

MODES = {
    "Stateful unreduced": (Strategy.UNREDUCED, True),
    "Stateless unreduced": (Strategy.UNREDUCED, False),
    "Stateful SPOR-NET": (Strategy.SPOR_NET, True),
    "Stateless SPOR-NET": (Strategy.SPOR_NET, False),
}


@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_statefulness_cell(benchmark, table_registry, entry, mode):
    """One cell: one statefulness/reduction combination on one workload."""
    strategy, stateful = MODES[mode]
    protocol = entry.quorum_model()

    def cell():
        return run_check(
            protocol, entry.invariant, strategy,
            stateful=stateful, max_states=500_000, max_seconds=60,
        )

    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    benchmark.extra_info["states"] = result.statistics.states_visited
    benchmark.extra_info["revisits"] = result.statistics.revisits
    table_registry.declare_table(TABLE, COLUMNS)
    table_registry.record(TABLE, entry.description, mode, result, entry.invariant.name)
    assert result.verified == (not entry.expect_violation)


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_stateless_never_visits_fewer_states(benchmark, entry):
    """Stateless search re-explores states, so it can only visit more of them."""
    protocol = entry.quorum_model()

    def both():
        stateful = run_check(protocol, entry.invariant, Strategy.SPOR_NET, stateful=True)
        stateless = run_check(protocol, entry.invariant, Strategy.SPOR_NET, stateful=False,
                              max_states=500_000, max_seconds=60)
        return stateful, stateless

    stateful, stateless = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["stateful_states"] = stateful.statistics.states_visited
    benchmark.extra_info["stateless_states"] = stateless.statistics.states_visited
    assert (
        stateless.statistics.states_visited
        >= stateful.statistics.states_visited
    )
