"""Microbenchmark for the interned-state successor engine.

Measures the exact access pattern that dominates stateless DPOR: the same
states are expanded over and over along different interleavings.  The
workload enumerates a bounded frontier of a Paxos single-message model once,
then repeatedly recomputes every state's enabled executions and successors —
``raw`` goes through the stateless semantics primitives each round, while
``engine`` hits the interned-state caches from round two on.

The companion assertions keep the benchmark honest: both variants must
produce identical enabled sets and successor states.
"""

from __future__ import annotations

import pytest

from repro.mp.semantics import SuccessorEngine, apply_execution, enabled_executions
from repro.protocols.paxos import PaxosConfig, build_paxos_single

ROUNDS = 8
FRONTIER_DEPTH = 3


def _protocol():
    return build_paxos_single(PaxosConfig(1, 3, 1))


def _frontier(protocol):
    """Collect the states reachable within FRONTIER_DEPTH steps (with repeats)."""
    states = [protocol.initial_state()]
    frontier = list(states)
    for _ in range(FRONTIER_DEPTH):
        next_frontier = []
        for state in frontier:
            for execution in enabled_executions(state, protocol):
                next_frontier.append(apply_execution(state, execution))
        states.extend(next_frontier)
        frontier = next_frontier
    return states


def _drive_raw(protocol, states):
    total = 0
    for _ in range(ROUNDS):
        for state in states:
            for execution in enabled_executions(state, protocol):
                apply_execution(state, execution)
                total += 1
    return total


def _drive_engine(protocol, states):
    engine = SuccessorEngine(protocol)
    interned = [engine.intern(state) for state in states]
    total = 0
    for _ in range(ROUNDS):
        for state in interned:
            for execution in engine.enabled(state):
                engine.successor(state, execution)
                total += 1
    return total


@pytest.fixture(scope="module")
def workload():
    protocol = _protocol()
    return protocol, _frontier(protocol)


def test_engine_agrees_with_raw_primitives(workload):
    protocol, states = workload
    engine = SuccessorEngine(protocol)
    for state in states:
        interned = engine.intern(state)
        assert engine.enabled(interned) == enabled_executions(state, protocol)
        for execution in engine.enabled(interned):
            assert engine.successor(interned, execution) == apply_execution(state, execution)


@pytest.mark.benchmark(group="successor-engine")
def test_raw_semantics_reexpansion(benchmark, workload):
    protocol, states = workload
    total = benchmark.pedantic(_drive_raw, args=(protocol, states), rounds=1, iterations=1)
    benchmark.extra_info["transitions"] = total


@pytest.mark.benchmark(group="successor-engine")
def test_engine_cached_reexpansion(benchmark, workload):
    protocol, states = workload
    total = benchmark.pedantic(_drive_engine, args=(protocol, states), rounds=1, iterations=1)
    benchmark.extra_info["transitions"] = total


def test_engine_reexpansion_is_faster(workload):
    """The cached engine must beat the raw primitives on this workload.

    A wide margin is typical (the table cells show 5x+); the assertion uses
    a conservative 1.5x so CI noise cannot flake it.
    """
    import time

    protocol, states = workload
    start = time.perf_counter()
    raw_total = _drive_raw(protocol, states)
    raw_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    engine_total = _drive_engine(protocol, states)
    engine_elapsed = time.perf_counter() - start
    assert raw_total == engine_total
    assert engine_elapsed * 1.5 < raw_elapsed, (
        f"engine {engine_elapsed:.3f}s not 1.5x faster than raw {raw_elapsed:.3f}s"
    )
