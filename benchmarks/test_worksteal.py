"""Benchmark — work-stealing parallel DFS vs. the serial DFS.

Times the largest verified stubborn-set Table-I cell (and its unreduced
baseline) under the serial depth-first search and the work-stealing engine
at several worker counts, and emits a machine-readable
``BENCH_worksteal_*.json`` payload into ``benchmarks/results/`` so the
nightly job records the speedup trajectory alongside the other artifacts.

Honesty rules of this benchmark:

* verdicts must agree with the serial run, and unreduced runs must visit
  exactly the serial state count, at every worker count;
* the ≥2x speedup acceptance bar is only *asserted* when the machine can
  physically deliver it (four or more usable cores, see
  ``REPRO_REQUIRE_WORKSTEAL_SPEEDUP``); on smaller machines the measured
  ratio is still recorded in the payload rather than silently skipped.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.analysis.aggregate import bench_payload, write_bench_file
from repro.checker.search import dfs_search
from repro.parallel import parallel_dfs_search
from repro.por.dependence import DependenceRelation
from repro.por.seed import make_seed_heuristic
from repro.por.stubborn import StubbornSetProvider
from repro.protocols.catalog import paxos_entry, storage_entry

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the work-stealing search requires the fork start method",
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Worker counts measured against the serial baseline.
WORKER_COUNTS = (2, 4)

#: Assert the ≥2x acceptance bar at 4 workers when enough cores exist (or
#: when explicitly forced): "1" forces the assertion, "0" disables it, and
#: "auto" (default) asserts only on machines with at least 4 usable cores.
REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_WORKSTEAL_SPEEDUP", "auto")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _speedup_bar_active() -> bool:
    if REQUIRE_SPEEDUP == "1":
        return True
    if REQUIRE_SPEEDUP == "0":
        return False
    return _usable_cores() >= 4


def _bench_cell(scale: str):
    """The largest verified stubborn-set cell at the harness scale."""
    if scale == "paper":
        return paxos_entry(2, 3, 1)
    return storage_entry(3, 1)


def _stubborn_reducer(protocol):
    provider = StubbornSetProvider(
        protocol=protocol,
        dependence=DependenceRelation.precompute(protocol),
        seed_heuristic=make_seed_heuristic("opposite-transaction"),
        use_net=True,
    )
    return provider.reduce


def _timed(search):
    started = time.perf_counter()
    outcome = search()
    return outcome, time.perf_counter() - started


def test_worksteal_speedup_on_largest_stubborn_cell(benchmark, bench_scale):
    """Serial vs. work-stealing DFS on the dominant stubborn-set cell."""
    entry = _bench_cell(bench_scale)
    invariant = entry.invariant

    records = []

    def run(strategy_label, reducer_factory, workers):
        protocol = entry.quorum_model()
        reducer = reducer_factory(protocol) if reducer_factory else None
        if workers <= 1:
            outcome, wall = _timed(lambda: dfs_search(protocol, invariant, reducer=reducer))
        else:
            outcome, wall = _timed(
                lambda: parallel_dfs_search(protocol, invariant, workers=workers, reducer=reducer)
            )
        assert outcome.verified == (not entry.expect_violation)
        records.append(
            {
                "cell": entry.key,
                "model": "quorum",
                "strategy": strategy_label,
                "workers": workers,
                "verified": outcome.verified,
                "complete": outcome.complete,
                "states_visited": outcome.statistics.states_visited,
                "transitions_executed": outcome.statistics.transitions_executed,
                "elapsed_seconds": wall,
                "batch_mode": "worksteal",
            }
        )
        return outcome, wall

    # Unreduced baseline: count parity is exact, so assert it.
    serial_unreduced, serial_unreduced_wall = run("dfs", None, 1)
    for workers in WORKER_COUNTS:
        parallel_unreduced, _ = run("dfs", None, workers)
        assert (
            parallel_unreduced.statistics.states_visited
            == serial_unreduced.statistics.states_visited
        )

    # Stubborn-set cell: the acceptance-criterion measurement.
    serial_stubborn, serial_wall = benchmark.pedantic(
        lambda: run("stubborn", _stubborn_reducer, 1), rounds=1, iterations=1
    )
    speedups = {}
    for workers in WORKER_COUNTS:
        _, parallel_wall = run("stubborn", _stubborn_reducer, workers)
        speedups[workers] = serial_wall / parallel_wall if parallel_wall > 0 else 0.0

    benchmark.extra_info["states"] = serial_stubborn.statistics.states_visited
    benchmark.extra_info["speedups"] = {str(k): round(v, 3) for k, v in speedups.items()}
    benchmark.extra_info["usable_cores"] = _usable_cores()

    payload = bench_payload(
        "worksteal",
        records,
        scale=bench_scale,
        usable_cores=_usable_cores(),
        serial_stubborn_seconds=serial_wall,
        serial_unreduced_seconds=serial_unreduced_wall,
        speedup_over_serial_dfs={str(k): v for k, v in speedups.items()},
        speedup_bar_asserted=_speedup_bar_active(),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = write_bench_file(RESULTS_DIR, "worksteal", payload, label=bench_scale)
    assert json.loads(path.read_text())["kind"] == "worksteal"

    if _speedup_bar_active():
        assert speedups[4] >= 2.0, (
            f"work-stealing DFS at 4 workers is only {speedups[4]:.2f}x over "
            f"serial DFS on {entry.key} (bar: 2.0x; "
            f"payload recorded at {path})"
        )
