"""Shared infrastructure of the benchmark harness.

Every benchmark measures one *cell* of one of the paper's evaluation tables:
a protocol instance checked under one search strategy.  The measured wall
clock goes to pytest-benchmark; the state counts and verdicts are collected
in a session-wide registry and rendered as paper-style tables (printed and
written to ``benchmarks/results/``) when the session finishes.

Scale: the harness runs the paper's own protocol settings by default.  The
dynamic-POR baseline column is budget-capped (it is stateless and, exactly
as in the paper, does not terminate in reasonable time on the larger
instances); capped cells are marked with ``>=`` in the rendered table.
Set ``REPRO_BENCH_SCALE=small`` for a quick smoke run on reduced settings.
"""

from __future__ import annotations

import os
from collections import defaultdict
from pathlib import Path
from typing import Dict, Optional, Tuple

import pytest

from repro.analysis.reporting import EvaluationTable, format_count, format_duration
from repro.checker import CheckerOptions, ModelChecker, SearchConfig, Strategy
from repro.checker.result import CheckResult
from repro.mp.protocol import Protocol

#: Budget for the stateless dynamic-POR baseline cells (per cell).
DPOR_MAX_SECONDS = float(os.environ.get("REPRO_DPOR_MAX_SECONDS", "25"))
DPOR_MAX_STATES = int(os.environ.get("REPRO_DPOR_MAX_STATES", "300000"))

#: Scale of the protocol settings: "paper" (default) or "small".
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper")

RESULTS_DIR = Path(__file__).parent / "results"


def run_check(
    protocol: Protocol,
    invariant,
    strategy: Strategy,
    seed_heuristic: str = "opposite-transaction",
    max_seconds: Optional[float] = None,
    max_states: Optional[int] = None,
    stateful: bool = True,
) -> CheckResult:
    """Run one model-checking cell with optional budget caps."""
    options = CheckerOptions(
        search=SearchConfig(
            stateful=stateful,
            max_seconds=max_seconds,
            max_states=max_states,
        ),
        seed_heuristic=seed_heuristic,
    )
    return ModelChecker(protocol, invariant, options).run(strategy)


class TableRegistry:
    """Collects per-cell results and renders the paper-style tables."""

    def __init__(self) -> None:
        #: table name -> (columns tuple, row label -> metadata + cells)
        self._tables: Dict[str, Dict] = {}

    def declare_table(self, name: str, columns: Tuple[str, ...]) -> None:
        self._tables.setdefault(name, {"columns": columns, "rows": defaultdict(dict)})

    def record(
        self,
        table: str,
        row: str,
        column: str,
        result: CheckResult,
        property_name: str,
    ) -> None:
        entry = self._tables[table]["rows"][row]
        entry.setdefault("property", property_name)
        entry.setdefault("cells", {})
        entry["cells"][column] = result

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render_table(self, name: str) -> str:
        spec = self._tables[name]
        table = EvaluationTable(title=name, columns=list(spec["columns"]))
        for row_label, entry in spec["rows"].items():
            cells: Dict[str, CheckResult] = entry.get("cells", {})
            outcome = "-"
            if cells:
                outcome = "CE" if any(r.found_counterexample for r in cells.values()) else "Verified"
            row = table.new_row(row_label, entry.get("property", "-"), outcome)
            for column, result in cells.items():
                row.add_result(column, result)
        rendered = table.render()
        annotations = []
        for row_label, entry in spec["rows"].items():
            for column, result in entry.get("cells", {}).items():
                if not result.complete and not result.found_counterexample:
                    annotations.append(
                        f"  note: {row_label} / {column}: budget cap hit after "
                        f">={format_count(result.statistics.states_visited)} states, "
                        f"{format_duration(result.statistics.elapsed_seconds)}"
                    )
        if annotations:
            rendered += "\n" + "\n".join(annotations)
        return rendered

    def render_all(self) -> str:
        return "\n\n".join(self.render_table(name) for name in self._tables)

    @property
    def tables(self):
        return self._tables


_REGISTRY = TableRegistry()


@pytest.fixture(scope="session")
def table_registry() -> TableRegistry:
    """Session-wide registry the benchmark modules record their cells into."""
    return _REGISTRY


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Protocol-setting scale: ``"paper"`` (default) or ``"small"``."""
    return BENCH_SCALE


def pytest_sessionfinish(session, exitstatus):
    """Write the assembled tables to benchmarks/results/ and echo them."""
    if not _REGISTRY.tables:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = _REGISTRY.render_all()
    (RESULTS_DIR / "evaluation_tables.txt").write_text(rendered + "\n")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line("")
        for line in rendered.splitlines():
            reporter.write_line(line)
