"""Benchmark — packed fast-path successor engine vs. the PR-1 engine.

Measures states/second of the serial depth-first search on a Table-I
quorum cell under the object-graph :class:`SuccessorEngine` and under the
packed :class:`FastSuccessorEngine`, asserts byte-identical verdicts and
visited-state counts, and emits a machine-readable
``BENCH_fastpath_*.json`` payload into ``benchmarks/results/`` so the
nightly job records the per-state-constant trajectory.

Honesty rules, mirroring the worksteal benchmark:

* the fast run must reproduce the object run's verdict, visited-state
  count and transition count exactly — a speedup that changes the search
  is a bug, not a result;
* the ≥3x acceptance bar (the ISSUE-5 criterion) is *asserted* when the
  machine has four or more usable cores or when explicitly forced via
  ``REPRO_REQUIRE_FASTPATH_SPEEDUP`` ("1" forces, "0" disables, "auto"
  decides by core count); the measured ratio is always recorded in the
  payload either way.  The speedup is a serial constant-factor win, so
  the core-count gate only guards against noisy shared CI boxes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.aggregate import bench_payload, write_bench_file
from repro.checker.search import dfs_search
from repro.fastpath.search import fast_dfs_search
from repro.protocols.catalog import paxos_entry, storage_entry

RESULTS_DIR = Path(__file__).parent / "results"

#: Minimum accumulated wall clock per engine before a ratio is trusted.
MIN_MEASURE_SECONDS = float(os.environ.get("REPRO_FASTPATH_MIN_SECONDS", "0.4"))

#: The ISSUE-5 acceptance bar: packed states/sec over object states/sec.
SPEEDUP_BAR = 3.0

REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_FASTPATH_SPEEDUP", "auto")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _speedup_bar_active() -> bool:
    if REQUIRE_SPEEDUP == "1":
        return True
    if REQUIRE_SPEEDUP == "0":
        return False
    return _usable_cores() >= 4


def _bench_cell(scale: str):
    """The serial-DFS Table-I quorum cell at the harness scale."""
    if scale == "paper":
        return paxos_entry(2, 3, 1)
    return storage_entry(3, 1)


def _measure(entry, search):
    """Run ``search`` on fresh models until the accumulated time is
    trustworthy; return (outcome, best states/sec, rounds)."""
    outcome = None
    best = 0.0
    total = 0.0
    rounds = 0
    while total < MIN_MEASURE_SECONDS or rounds < 2:
        protocol = entry.quorum_model()
        started = time.perf_counter()
        outcome = search(protocol, entry.invariant)
        elapsed = time.perf_counter() - started
        total += elapsed
        rounds += 1
        if elapsed > 0:
            best = max(best, outcome.statistics.states_visited / elapsed)
        if rounds >= 25:  # pragma: no cover - pathological timer
            break
    return outcome, best, rounds


def test_fastpath_speedup_on_serial_dfs_quorum_cell(benchmark, bench_scale):
    """Object vs. packed serial DFS on the Table-I quorum cell."""
    entry = _bench_cell(bench_scale)

    object_outcome, object_rate, object_rounds = benchmark.pedantic(
        lambda: _measure(entry, dfs_search), rounds=1, iterations=1
    )
    fast_outcome, fast_rate, fast_rounds = _measure(entry, fast_dfs_search)

    # Byte-identical search: same verdict, same closure, same edge count.
    assert fast_outcome.verified == object_outcome.verified
    assert (
        fast_outcome.statistics.states_visited
        == object_outcome.statistics.states_visited
    )
    assert (
        fast_outcome.statistics.transitions_executed
        == object_outcome.statistics.transitions_executed
    )

    speedup = fast_rate / object_rate if object_rate > 0 else float("inf")
    benchmark.extra_info["states"] = object_outcome.statistics.states_visited
    benchmark.extra_info["object_states_per_sec"] = round(object_rate)
    benchmark.extra_info["fast_states_per_sec"] = round(fast_rate)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["usable_cores"] = _usable_cores()

    records = [
        {
            "cell": entry.key,
            "model": "quorum",
            "strategy": "dfs",
            "successors": successors,
            "workers": 1,
            "verified": outcome.verified,
            "complete": outcome.complete,
            "states_visited": outcome.statistics.states_visited,
            "transitions_executed": outcome.statistics.transitions_executed,
            "elapsed_seconds": outcome.statistics.elapsed_seconds,
            "states_per_second": rate,
            "measure_rounds": rounds,
            "batch_mode": "fastpath",
        }
        for successors, outcome, rate, rounds in (
            ("object", object_outcome, object_rate, object_rounds),
            ("fast", fast_outcome, fast_rate, fast_rounds),
        )
    ]
    payload = bench_payload(
        "fastpath",
        records,
        scale=bench_scale,
        usable_cores=_usable_cores(),
        object_states_per_sec=object_rate,
        fast_states_per_sec=fast_rate,
        speedup_over_object_engine=speedup,
        speedup_bar=SPEEDUP_BAR,
        speedup_bar_asserted=_speedup_bar_active(),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = write_bench_file(RESULTS_DIR, "fastpath", payload, label=bench_scale)
    assert json.loads(path.read_text())["kind"] == "fastpath"

    if _speedup_bar_active():
        assert speedup >= SPEEDUP_BAR, (
            f"packed fast path is only {speedup:.2f}x over the object engine "
            f"on {entry.key} (bar: {SPEEDUP_BAR}x; payload recorded at {path})"
        )
