"""Ablation — seed-transition heuristics (Section V-B discussion).

The paper reports that its hand-tuned "opposite transaction" heuristic (seed
the stubborn set with transitions that start, rather than finish, a protocol
instance) performed well, while the transaction heuristic of [5] "resulted
in very little reduction".  This ablation runs the static POR with the
available heuristics on the Paxos and storage settings and records the state
counts side by side.
"""

from __future__ import annotations

import pytest

from repro.checker import Strategy
from repro.protocols.catalog import paxos_entry, storage_entry

from .conftest import BENCH_SCALE, run_check

TABLE = "Ablation — seed-transition heuristics (SPOR-NET)"
HEURISTICS = ("opposite-transaction", "transaction", "first")


def ablation_entries():
    if BENCH_SCALE == "small":
        return (paxos_entry(2, 2, 1), storage_entry(2, 1))
    return (paxos_entry(2, 3, 1), storage_entry(3, 1))


ENTRIES = ablation_entries()
ENTRY_IDS = [entry.key for entry in ENTRIES]


@pytest.mark.parametrize("heuristic", HEURISTICS)
@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_seed_heuristic_cell(benchmark, table_registry, entry, heuristic):
    """One cell: a seed heuristic applied to one quorum-model workload."""
    protocol = entry.quorum_model()

    def cell():
        return run_check(protocol, entry.invariant, Strategy.SPOR_NET,
                         seed_heuristic=heuristic)

    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    benchmark.extra_info["states"] = result.statistics.states_visited
    table_registry.declare_table(TABLE, HEURISTICS)
    table_registry.record(TABLE, entry.description, heuristic, result, entry.invariant.name)
    # Heuristics only change the amount of reduction, never the verdict.
    assert result.verified == (not entry.expect_violation)


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_opposite_transaction_is_no_worse_than_transaction(benchmark, entry):
    """The paper's heuristic should not lose to the transaction heuristic."""
    protocol = entry.quorum_model()

    def both():
        opposite = run_check(protocol, entry.invariant, Strategy.SPOR_NET,
                             seed_heuristic="opposite-transaction")
        transaction = run_check(protocol, entry.invariant, Strategy.SPOR_NET,
                                seed_heuristic="transaction")
        return opposite, transaction

    opposite, transaction = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["opposite_states"] = opposite.statistics.states_visited
    benchmark.extra_info["transaction_states"] = transaction.statistics.states_visited
    assert (
        opposite.statistics.states_visited
        <= transaction.statistics.states_visited * 1.5
    )
