"""Table I — quorum semantics results.

For every protocol setting of the paper's Table I, this module regenerates
the three columns:

* ``No quorum (DPOR)`` — the single-message model explored by the stateless
  dynamic POR (Basset's configuration).  The cell is budget-capped exactly
  because, as in the paper, stateless DPOR does not terminate on the larger
  verified instances; capped cells are annotated under the table.
* ``No quorum (SPOR)`` — the single-message model under the static POR.
* ``Quorum (SPOR)`` — the quorum-transition model under the static POR.

The paper's claim reproduced here is the *ordering*: the quorum model needs
no more states (and usually far fewer) than the single-message model, and
both SPOR columns beat the stateless baseline by a wide margin.  Rows whose
paper entry is a counterexample (Faulty Paxos, wrong agreement, wrong
regularity) reproduce the fast-debugging experiment: the bug is found within
a small number of states.
"""

from __future__ import annotations

import pytest

from repro.checker import Strategy
from repro.protocols.catalog import CatalogEntry, multicast_entry, paxos_entry, storage_entry

from .conftest import BENCH_SCALE, DPOR_MAX_SECONDS, DPOR_MAX_STATES, run_check

TABLE = "Table I — quorum semantics"
COLUMNS = ("No quorum (DPOR)", "No quorum (SPOR)", "Quorum (SPOR)")


def table1_entries() -> tuple:
    """The paper's Table I rows (scaled down when REPRO_BENCH_SCALE=small)."""
    if BENCH_SCALE == "small":
        return (
            paxos_entry(2, 2, 1),
            paxos_entry(2, 3, 1, faulty=True),
            multicast_entry(3, 0, 1, 1),
            multicast_entry(2, 1, 0, 1),
            multicast_entry(2, 1, 2, 1),
            storage_entry(2, 1),
            storage_entry(2, 1, wrong_specification=True),
        )
    return (
        paxos_entry(2, 3, 1),
        paxos_entry(2, 3, 1, faulty=True),
        multicast_entry(3, 0, 1, 1),
        multicast_entry(2, 1, 0, 1),
        multicast_entry(2, 1, 2, 1),
        storage_entry(3, 1),
        storage_entry(3, 2, wrong_specification=True),
    )


ENTRIES = table1_entries()
ENTRY_IDS = [entry.key for entry in ENTRIES]


def record(table_registry, entry: CatalogEntry, column: str, result) -> None:
    table_registry.declare_table(TABLE, COLUMNS)
    table_registry.record(TABLE, entry.description, column, result, entry.invariant.name)


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_no_quorum_dpor(benchmark, table_registry, entry):
    """Column 1: single-message model, stateless dynamic POR (budget-capped)."""
    protocol = entry.single_model()

    def cell():
        return run_check(
            protocol,
            entry.invariant,
            Strategy.DPOR,
            max_seconds=DPOR_MAX_SECONDS,
            max_states=DPOR_MAX_STATES,
            stateful=False,
        )

    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    benchmark.extra_info["states"] = result.statistics.states_visited
    benchmark.extra_info["outcome"] = result.outcome_label()
    record(table_registry, entry, COLUMNS[0], result)
    if entry.expect_violation and result.complete:
        assert result.found_counterexample


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_no_quorum_spor(benchmark, table_registry, entry):
    """Column 2: single-message model, static POR."""
    protocol = entry.single_model()

    def cell():
        return run_check(protocol, entry.invariant, Strategy.SPOR_NET)

    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    benchmark.extra_info["states"] = result.statistics.states_visited
    benchmark.extra_info["outcome"] = result.outcome_label()
    record(table_registry, entry, COLUMNS[1], result)
    assert result.verified == (not entry.expect_violation)


@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_quorum_spor(benchmark, table_registry, entry):
    """Column 3: quorum-transition model, static POR."""
    protocol = entry.quorum_model()

    def cell():
        return run_check(protocol, entry.invariant, Strategy.SPOR_NET)

    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    benchmark.extra_info["states"] = result.statistics.states_visited
    benchmark.extra_info["outcome"] = result.outcome_label()
    record(table_registry, entry, COLUMNS[2], result)
    assert result.verified == (not entry.expect_violation)


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if not e.expect_violation],
    ids=[e.key for e in ENTRIES if not e.expect_violation],
)
def test_quorum_model_beats_single_message_model(benchmark, table_registry, entry):
    """The headline Table I trend: quorum models explore no more states."""

    def both():
        single = run_check(entry.single_model(), entry.invariant, Strategy.SPOR_NET)
        quorum = run_check(entry.quorum_model(), entry.invariant, Strategy.SPOR_NET)
        return single, quorum

    single, quorum = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["single_states"] = single.statistics.states_visited
    benchmark.extra_info["quorum_states"] = quorum.statistics.states_visited
    assert quorum.statistics.states_visited <= single.statistics.states_visited
