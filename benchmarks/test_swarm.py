"""Benchmark — swarm sampling throughput and time-to-first-violation.

Measures the seeded random-walk backend on the lossy Echo Multicast cells
(the interleaving-explosion workload the sampler exists for) and emits a
machine-readable ``BENCH_swarm_*.json`` payload into
``benchmarks/results/``:

* **walks/sec** — full-budget throughput on the clean lossy cell, at one
  worker and at four (the walker pool's scaling signal);
* **time-to-first-violation** — wall clock until the wrong-agreement
  lossy cell yields its counterexample, at one worker and at four.

Honesty rules: the violating cell must produce the *same* counterexample
trace at every worker count (the pool's lowest-violating-index bound makes
parallel runs trace-identical to serial), and the clean cell must come
back inconclusive — never verified — at every worker count.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.analysis.aggregate import bench_payload, write_bench_file
from repro.engine.plan import CheckPlan
from repro.protocols.catalog import multicast_entry
from repro.swarm.search import parallel_swarm_search, swarm_search

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the swarm walker pool requires the fork start method",
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Worker counts measured (1 = the serial walker, no pool).
WORKER_COUNTS = (1, 4)

ROOT_SEED = 7


def _budgets(scale: str):
    """(throughput walks, violation-hunt walks) at the harness scale."""
    if scale == "paper":
        return 20_000, 200_000
    return 4_000, 50_000


def _search_config():
    return CheckPlan(backend="swarm", walk_seed=ROOT_SEED).search_config()


def _run(entry, walks, workers):
    protocol = entry.quorum_model()
    started = time.perf_counter()
    if workers <= 1:
        outcome = swarm_search(
            protocol, entry.invariant, _search_config(),
            walks=walks, walk_seed=ROOT_SEED,
        )
    else:
        outcome = parallel_swarm_search(
            protocol, entry.invariant, _search_config(),
            walks=walks, walk_seed=ROOT_SEED, workers=workers,
        )
    return outcome, time.perf_counter() - started


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_swarm_throughput_and_time_to_violation(benchmark, bench_scale):
    """Walks/sec on the clean lossy cell, detection latency on the bad one."""
    throughput_walks, hunt_walks = _budgets(bench_scale)
    clean = multicast_entry(2, 1, 0, 1, message_loss=True)
    violating = multicast_entry(2, 1, 2, 1, message_loss=True)

    records = []
    walks_per_second = {}
    time_to_first_violation = {}
    traces = {}

    for workers in WORKER_COUNTS:
        # Throughput: the clean cell runs its full budget and must stay
        # honestly inconclusive.
        outcome, wall = _run(clean, throughput_walks, workers)
        assert outcome.verified and not outcome.complete
        walks_per_second[workers] = throughput_walks / wall if wall > 0 else 0.0
        records.append({
            "cell": clean.key,
            "model": "quorum",
            "strategy": "swarm",
            "workers": workers,
            "walks": throughput_walks,
            "walk_seed": ROOT_SEED,
            "verified": outcome.verified,
            "complete": outcome.complete,
            "states_visited": outcome.statistics.states_visited,
            "transitions_executed": outcome.statistics.transitions_executed,
            "elapsed_seconds": wall,
            "walks_per_second": walks_per_second[workers],
            "measure": "throughput",
        })

        # Detection latency: the violating cell stops at its first
        # counterexample.  The serial hunt is the pytest-benchmark row.
        if workers == 1:
            outcome, wall = benchmark.pedantic(
                lambda: _run(violating, hunt_walks, 1), rounds=1, iterations=1
            )
        else:
            outcome, wall = _run(violating, hunt_walks, workers)
        assert outcome.counterexample is not None
        time_to_first_violation[workers] = wall
        traces[workers] = outcome.counterexample.transition_names()
        records.append({
            "cell": violating.key,
            "model": "quorum",
            "strategy": "swarm",
            "workers": workers,
            "walks": hunt_walks,
            "walk_seed": ROOT_SEED,
            "verified": outcome.verified,
            "complete": outcome.complete,
            "states_visited": outcome.statistics.states_visited,
            "transitions_executed": outcome.statistics.transitions_executed,
            "elapsed_seconds": wall,
            "counterexample_steps": len(outcome.counterexample.steps),
            "measure": "time_to_first_violation",
        })

    # The pool reports exactly the violation the serial walker found.
    for workers in WORKER_COUNTS[1:]:
        assert traces[workers] == traces[WORKER_COUNTS[0]]

    benchmark.extra_info["walks_per_second"] = {
        str(k): round(v, 1) for k, v in walks_per_second.items()
    }
    benchmark.extra_info["time_to_first_violation_seconds"] = {
        str(k): round(v, 4) for k, v in time_to_first_violation.items()
    }

    payload = bench_payload(
        "swarm",
        records,
        scale=bench_scale,
        root_seed=ROOT_SEED,
        usable_cores=_usable_cores(),
        walks_per_second={str(k): v for k, v in walks_per_second.items()},
        time_to_first_violation_seconds={
            str(k): v for k, v in time_to_first_violation.items()
        },
    )
    path = write_bench_file(RESULTS_DIR, "swarm", payload, label=bench_scale)
    assert json.loads(path.read_text())["kind"] == "swarm"
