"""Benchmark — telemetry cost with no sink attached, and the run report.

The observability layer promises near-zero overhead when nobody listens:
recorders fire at phase boundaries only, ``emit`` early-outs on
``observer is None``, and span brackets reduce to one ``nullcontext``.
This benchmark measures serial fast-path DFS states/second with and
without a :class:`~repro.obs.telemetry.RunTelemetry` attached and asserts
the telemetry run keeps at least 98% of the bare throughput (the ISSUE-7
<=2% acceptance bar).

It also exercises the report side: the run's memo hit/miss/eviction
counters (PR 6's bounded-memo instrumentation) travel through the
telemetry snapshot into the ``BENCH_telemetry_*.json`` record via
:func:`~repro.analysis.aggregate.telemetry_block`.

Honesty rules, mirroring the fastpath benchmark:

* both runs must produce identical verdicts and closures — telemetry
  must observe the search, never perturb it;
* the overhead bar is *asserted* on machines with four or more usable
  cores or when forced via ``REPRO_REQUIRE_TELEMETRY_OVERHEAD`` ("1"
  forces, "0" disables, "auto" decides by core count); the measured
  ratio is always recorded in the payload either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.aggregate import bench_payload, telemetry_block, write_bench_file
from repro.engine import CheckPlan, run_plan
from repro.fastpath.search import fast_dfs_search
from repro.obs.telemetry import RunTelemetry
from repro.protocols.catalog import paxos_entry, storage_entry

RESULTS_DIR = Path(__file__).parent / "results"

#: Minimum accumulated wall clock per variant before a ratio is trusted.
MIN_MEASURE_SECONDS = float(os.environ.get("REPRO_TELEMETRY_MIN_SECONDS", "0.4"))

#: The ISSUE-7 acceptance bar: telemetry-on throughput over bare throughput.
OVERHEAD_BAR = 0.98

REQUIRE_OVERHEAD = os.environ.get("REPRO_REQUIRE_TELEMETRY_OVERHEAD", "auto")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _overhead_bar_active() -> bool:
    if REQUIRE_OVERHEAD == "1":
        return True
    if REQUIRE_OVERHEAD == "0":
        return False
    return _usable_cores() >= 4


def _bench_cell(scale: str):
    if scale == "paper":
        return paxos_entry(2, 3, 1)
    return storage_entry(3, 1)


def _measure(entry, with_telemetry: bool):
    """Best states/second over repeated fresh-model runs of one variant."""
    outcome = None
    best = 0.0
    total = 0.0
    rounds = 0
    while total < MIN_MEASURE_SECONDS or rounds < 2:
        protocol = entry.quorum_model()
        telemetry = RunTelemetry() if with_telemetry else None
        started = time.perf_counter()
        outcome = fast_dfs_search(
            protocol, entry.invariant, telemetry=telemetry
        )
        elapsed = time.perf_counter() - started
        total += elapsed
        rounds += 1
        if elapsed > 0:
            best = max(best, outcome.statistics.states_visited / elapsed)
        if rounds >= 25:  # pragma: no cover - pathological timer
            break
    return outcome, best, rounds


def test_telemetry_overhead_is_bounded(benchmark, bench_scale):
    """Fast serial DFS with vs. without an attached RunTelemetry."""
    entry = _bench_cell(bench_scale)

    # Interleave a warmup of each variant, then measure bare first so any
    # machine-wide slowdown mid-benchmark penalises the baseline, not the
    # telemetry run.
    _measure(entry, with_telemetry=True)
    bare_outcome, bare_rate, bare_rounds = benchmark.pedantic(
        lambda: _measure(entry, with_telemetry=False), rounds=1, iterations=1
    )
    telemetry_outcome, telemetry_rate, telemetry_rounds = _measure(
        entry, with_telemetry=True
    )

    # Telemetry observes the search; it must never perturb it.
    assert telemetry_outcome.verified == bare_outcome.verified
    assert (
        telemetry_outcome.statistics.states_visited
        == bare_outcome.statistics.states_visited
    )
    assert (
        telemetry_outcome.statistics.transitions_executed
        == bare_outcome.statistics.transitions_executed
    )

    ratio = telemetry_rate / bare_rate if bare_rate > 0 else float("inf")
    benchmark.extra_info["states"] = bare_outcome.statistics.states_visited
    benchmark.extra_info["bare_states_per_sec"] = round(bare_rate)
    benchmark.extra_info["telemetry_states_per_sec"] = round(telemetry_rate)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 4)
    benchmark.extra_info["usable_cores"] = _usable_cores()

    # One full run through the plan layer for the report side: the record
    # carries the telemetry block, memo counters included.
    result = run_plan(
        entry.quorum_model(),
        entry.invariant,
        CheckPlan(store="fingerprint", successors="fast"),
    )
    block = telemetry_block(result.telemetry)
    assert block is not None
    assert "fastpath_memo_hits" in block
    assert "fastpath_memo_misses" in block
    assert "fastpath_memo_evictions" in block
    assert "span_seconds" in block and "search" in block["span_seconds"]

    records = [
        {
            "cell": entry.key,
            "model": "quorum",
            "strategy": "dfs",
            "successors": "fast",
            "workers": 1,
            "telemetry_attached": attached,
            "verified": outcome.verified,
            "states_visited": outcome.statistics.states_visited,
            "states_per_second": rate,
            "measure_rounds": rounds,
            "batch_mode": "telemetry",
        }
        for attached, outcome, rate, rounds in (
            (False, bare_outcome, bare_rate, bare_rounds),
            (True, telemetry_outcome, telemetry_rate, telemetry_rounds),
        )
    ]
    records[1]["telemetry"] = block
    payload = bench_payload(
        "telemetry",
        records,
        scale=bench_scale,
        usable_cores=_usable_cores(),
        bare_states_per_sec=bare_rate,
        telemetry_states_per_sec=telemetry_rate,
        throughput_ratio=ratio,
        overhead_bar=OVERHEAD_BAR,
        overhead_bar_asserted=_overhead_bar_active(),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = write_bench_file(RESULTS_DIR, "telemetry", payload, label=bench_scale)
    assert json.loads(path.read_text())["kind"] == "telemetry"

    if _overhead_bar_active():
        assert ratio >= OVERHEAD_BAR, (
            f"telemetry-attached fast DFS keeps only {ratio:.1%} of bare "
            f"throughput on {entry.key} (bar: {OVERHEAD_BAR:.0%}; payload "
            f"recorded at {path})"
        )
