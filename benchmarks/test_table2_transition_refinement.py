"""Table II — transition refinement in action.

For every protocol setting of the paper's Table II, this module regenerates
the four columns of the static-POR experiment on quorum models: unsplit,
reply-split, quorum-split and combined-split.  As in the paper, dynamic POR
is excluded (the refined transitions of one process are inter-dependent, so
refinement cannot help a per-process DPOR).

The reproduced claims are the orderings: refinement never changes the
verdict (Theorem 1), reply-split and combined-split explore no more states
than the unsplit model, and the counterexample rows stay cheap.  See
EXPERIMENTS.md for the discussion of where our absolute reduction factors
differ from the paper's (our per-state necessary-enabling-set optimisation
already captures part of what quorum-split buys the paper's strictly
state-unconditional LPOR).
"""

from __future__ import annotations

import pytest

from repro.checker import Strategy
from repro.protocols.catalog import CatalogEntry, multicast_entry, paxos_entry, storage_entry
from repro.refine import combined_split, quorum_split, reply_split

from .conftest import BENCH_SCALE, run_check

TABLE = "Table II — transition refinement"
COLUMNS = ("Unsplit", "Reply-split", "Quorum-split", "Combined-split")

SPLITS = {
    "Unsplit": lambda protocol: protocol,
    "Reply-split": reply_split,
    "Quorum-split": quorum_split,
    "Combined-split": combined_split,
}


def table2_entries() -> tuple:
    """The paper's Table II rows (scaled down when REPRO_BENCH_SCALE=small)."""
    if BENCH_SCALE == "small":
        return (
            paxos_entry(2, 2, 1),
            paxos_entry(2, 3, 1, faulty=True),
            multicast_entry(3, 0, 1, 1),
            multicast_entry(2, 1, 0, 1),
            multicast_entry(2, 1, 2, 1),
            storage_entry(2, 1),
            storage_entry(2, 1, wrong_specification=True),
        )
    return (
        paxos_entry(2, 3, 1),
        paxos_entry(2, 3, 1, faulty=True),
        multicast_entry(3, 0, 1, 1),
        multicast_entry(2, 1, 0, 1),
        multicast_entry(3, 1, 1, 1),
        multicast_entry(2, 1, 2, 1),
        storage_entry(3, 1),
        storage_entry(3, 2, wrong_specification=True),
    )


ENTRIES = table2_entries()
ENTRY_IDS = [entry.key for entry in ENTRIES]


def record(table_registry, entry: CatalogEntry, column: str, result) -> None:
    table_registry.declare_table(TABLE, COLUMNS)
    table_registry.record(TABLE, entry.description, column, result, entry.invariant.name)


@pytest.mark.parametrize("column", COLUMNS)
@pytest.mark.parametrize("entry", ENTRIES, ids=ENTRY_IDS)
def test_refinement_cell(benchmark, table_registry, entry, column):
    """One cell of Table II: a split strategy applied to one protocol setting."""
    protocol = SPLITS[column](entry.quorum_model())

    def cell():
        return run_check(protocol, entry.invariant, Strategy.SPOR_NET)

    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    benchmark.extra_info["states"] = result.statistics.states_visited
    benchmark.extra_info["outcome"] = result.outcome_label()
    benchmark.extra_info["transitions_in_model"] = len(protocol.transitions)
    record(table_registry, entry, column, result)
    # Theorem 1: refinement never changes the verdict.
    assert result.verified == (not entry.expect_violation)


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if not e.expect_violation],
    ids=[e.key for e in ENTRIES if not e.expect_violation],
)
def test_reply_split_explores_no_more_states(benchmark, table_registry, entry):
    """Reply-split (and hence combined-split) never hurts on the verified rows."""

    def both():
        unsplit = run_check(entry.quorum_model(), entry.invariant, Strategy.SPOR_NET)
        split = run_check(reply_split(entry.quorum_model()), entry.invariant, Strategy.SPOR_NET)
        return unsplit, split

    unsplit, split = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["unsplit_states"] = unsplit.statistics.states_visited
    benchmark.extra_info["reply_split_states"] = split.statistics.states_visited
    assert split.statistics.states_visited <= unsplit.statistics.states_visited
