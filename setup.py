"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
the project can also be installed in environments where the PEP 660
editable-install hooks are unavailable (e.g. offline machines without the
``wheel`` package), via the legacy ``pip install -e . --no-use-pep517`` path.
"""

from setuptools import setup

setup()
