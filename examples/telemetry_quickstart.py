#!/usr/bin/env python3
"""A tour of the observability layer: metrics, spans, captures, traces.

Every run through the plan layer carries a ``RunTelemetry``: a labelled
metrics registry plus a nested phase-span tracer, snapshotted onto
``CheckResult.telemetry``.  Attaching a ``JsonlSink`` observer captures
the engine's whole event stream to a ``.jsonl`` file, and the Chrome
trace exporter renders that capture as a Perfetto-loadable timeline —
the same pipeline as ``python -m repro check --trace-out`` followed by
``python -m repro trace``.

Four steps on one Table-I cell:

1. Run the packed fast path and read the run report: core search
   counters, memo hit/miss/eviction behaviour, per-phase span seconds.
2. Capture the event stream of a second run to JSONL.
3. Convert the capture to a Chrome trace-event file and validate it.
4. Compact the snapshot with ``telemetry_block`` — the subset that
   travels inside ``BENCH_*.json`` records.

Run with::

    python examples/telemetry_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.analysis.aggregate import telemetry_block
from repro.engine import CheckPlan, run_plan
from repro.obs import JsonlSink, convert_file, read_events
from repro.protocols.catalog import multicast_entry


def main() -> None:
    entry = multicast_entry(2, 1, 0, 1)
    plan = CheckPlan(store="fingerprint", successors="fast")
    print("=" * 72)
    print(f"Telemetry quickstart on {entry.key} "
          "(packed fast path, fingerprint store)")
    print("=" * 72)

    # 1. Every plan-layer run carries a telemetry snapshot.
    result = run_plan(entry.quorum_model(), entry.invariant, plan)
    metrics = result.telemetry["metrics"]
    print(f"\n[1] run report ({result.engine}): "
          f"{result.outcome_label()} — "
          f"{result.statistics.states_visited} states")
    for name in ("states_visited", "transitions_executed",
                 "fastpath_memo_hits", "fastpath_memo_misses",
                 "fastpath_memo_evictions"):
        print(f"    {name:28s} = {metrics[name]['total']}")
    for span in result.telemetry["spans"]["finished"]:
        indent = "  " * span["depth"]
        print(f"    span {indent}{span['span']:12s} "
              f"{span['elapsed_seconds'] * 1000:8.2f} ms")
    if "peak_rss_kb" in result.telemetry:
        print(f"    peak RSS {result.telemetry['peak_rss_kb']:,} KiB")

    with tempfile.TemporaryDirectory() as tmp:
        capture = Path(tmp) / "run.jsonl"
        trace = Path(tmp) / "run.trace.json"

        # 2. Capture a run's event stream (what --trace-out does).
        with JsonlSink(capture) as sink:
            run_plan(entry.quorum_model(), entry.invariant, plan,
                     observer=sink)
        events = read_events(capture)
        kinds = [event["kind"] for event in events]
        print(f"\n[2] captured {len(events)} events: {', '.join(kinds)}")

        # 3. Render it as a Chrome trace (what `repro trace` does).
        count = convert_file(capture, trace)
        document = json.loads(trace.read_text())
        slices = [e["name"] for e in document["traceEvents"]
                  if e["ph"] == "X"]
        print(f"[3] trace: {count} trace events, "
              f"slices: {', '.join(slices)} "
              "(load the file in Perfetto / chrome://tracing)")

    # 4. The compact block that rides inside BENCH_*.json records.
    block = telemetry_block(result.telemetry)
    print("\n[4] telemetry block for bench records:")
    print("    " + json.dumps(block, indent=2).replace("\n", "\n    "))


if __name__ == "__main__":
    main()
