#!/usr/bin/env python3
"""Swarm checking: seeded random walks where exhaustion is out of reach.

Exhaustive search proves invariants but its state count explodes with the
protocol setting; beyond a certain size no store fits the frontier.  The
swarm backend trades completeness for reach: it fires a budget of seeded
random walks through the state graph, checks the invariant along each, and
reports with three-valued honesty —

* a violated walk is **conclusive**: the exec-index path is replayed into
  a first-class, lasso-free counterexample, as real as any DFS trace;
* an exhausted walk budget is **inconclusive**: sampling that found
  nothing proves nothing, and the result never renders as "Verified".

Every walk's choices come from a splitmix64 stream seeded by
``(root_seed, walk_index)``, so any violation is bit-reproducible from two
integers — independent of scheduling, worker count, or filter state.

Three runs on the Echo Multicast family:

1. The "wrong agreement" setting (2,1,2,1) — Byzantine receivers beyond
   the assumed threshold: a seeded swarm finds the violation and replays
   the counterexample.
2. The same budget on the clean (2,1,0,1) setting: honest inconclusive.
3. The lossy-channel variant (message_loss=True) — droppable INIT/COMMIT
   deliveries multiply the interleavings, exactly the workload sampling
   is for: the violation survives loss and is still found.

Run with::

    python examples/swarm_quickstart.py
"""

from __future__ import annotations

from repro import (
    CheckPlan,
    MulticastConfig,
    agreement_invariant,
    build_multicast_quorum,
    run_plan,
)


def swarm_plan(walks: int, seed: int) -> CheckPlan:
    return CheckPlan(
        shape="dfs", reduction="none", backend="swarm", stateful=False,
        walks=walks, walk_seed=seed,
    )


def main() -> None:
    print("=" * 72)
    print("Swarm checking: seeded random walks, three-valued verdicts")
    print("=" * 72)

    # 1. A violating setting: 2 Byzantine receivers against an assumed
    #    threshold of 1. Walks stop at the first violated invariant and
    #    the winning walk's path is replayed into a real counterexample.
    wrong = build_multicast_quorum(MulticastConfig(2, 1, 2, 1))
    result = run_plan(wrong, agreement_invariant(), swarm_plan(50_000, seed=7))
    print(f"\n[1] wrong agreement (2,1,2,1), 50k walks, seed 7: "
          f"{result.outcome_label()}")
    ce = result.counterexample
    print(f"    counterexample: {len(ce.steps)} steps, "
          f"lasso-free={ce.cycle_start is None}")
    ce.replay(wrong)  # raises if the trace does not re-execute exactly
    print("    replay: every step re-executed, final state violates agreement")

    # Reproducibility: the same (root seed, budget) finds the same trace.
    again = run_plan(wrong, agreement_invariant(), swarm_plan(50_000, seed=7))
    identical = (again.counterexample.transition_names()
                 == ce.transition_names())
    print(f"    re-run with the same seed -> identical trace: {identical}")

    # 2. The clean setting under the same budget: nothing found, and the
    #    sampler says so instead of claiming a proof.
    clean = build_multicast_quorum(MulticastConfig(2, 1, 0, 1))
    result = run_plan(clean, agreement_invariant(), swarm_plan(2_000, seed=7))
    print(f"\n[2] clean setting (2,1,0,1), 2k walks: {result.outcome_label()}")
    print(f"    complete={result.complete}, conclusive={result.conclusive} "
          "(sampling never proves an invariant)")

    # 3. Message loss: droppable INIT/COMMIT deliveries blow up the
    #    interleaving count without adding new behaviours — the sampling
    #    workload. The violation is still found, loss or no loss.
    lossy = build_multicast_quorum(
        MulticastConfig(2, 1, 2, 1, message_loss=True)
    )
    result = run_plan(lossy, agreement_invariant(), swarm_plan(50_000, seed=7))
    print(f"\n[3] lossy wrong agreement, 50k walks: {result.outcome_label()}")
    stats = result.statistics
    print(f"    {stats.transitions_executed} walk steps, "
          f"~{stats.states_visited} distinct states sampled")


if __name__ == "__main__":
    main()
