#!/usr/bin/env python3
"""Checking liveness: nested DFS over the cyclic crash-recovery store.

The crash-recovery storage model is the repository's first *cyclic*
protocol family: a crash-prone replica's CRASH transition re-arms its own
RECOVER trigger (and vice versa), so the protocol never terminates and the
state graph contains genuine cycles.  That makes ◇-style questions
meaningful — and reachability search insufficient to answer them.

Three checks on the (2 replicas, 1 crash-prone) setting:

1. Safety still works: the durability invariant (a completed write is
   stored by a majority) is checked by plain DFS, cycles and all.
2. The liveness property ◇(write done ∨ some replica crashed) holds:
   every infinite run makes progress of one kind or the other.  The
   nested-DFS engine certifies there is no acceptance cycle.
3. The too-strong property ◇(write done) fails: a scheduler that only
   ever alternates CRASH/RECOVER starves the write forever.  The engine
   returns a *lasso* counterexample — a finite stem into a cycle that can
   be repeated ad infinitum — which we replay step by step.

Run with::

    python examples/liveness_quickstart.py
"""

from __future__ import annotations

from repro import (
    CheckPlan,
    CrashRecoveryConfig,
    build_crash_recovery_quorum,
    durability_invariant,
    eventually_done,
    eventually_progress,
    run_plan,
)


def main() -> None:
    config = CrashRecoveryConfig(replicas=2, crash_prone=1)
    print("=" * 72)
    print(f"Crash-recovery storage {config.setting_label}: "
          "safety and liveness on a cyclic state graph")
    print("=" * 72)
    protocol = build_crash_recovery_quorum(config)

    # 1. Safety: the goal axis defaults to "invariant" — plain DFS.
    safety = run_plan(protocol, durability_invariant(), CheckPlan())
    print(f"\n[1] durability invariant ({safety.engine}): "
          f"{safety.outcome_label()} — "
          f"{safety.statistics.states_visited} states")

    # 2. Liveness that holds: goal="liveness" resolves to nested DFS.
    plan = CheckPlan(goal="liveness")
    progress = run_plan(protocol, eventually_progress(), plan)
    print(f"[2] {eventually_progress().name} ({progress.engine}): "
          f"{progress.outcome_label()} — "
          f"{progress.statistics.states_visited} states")

    # 3. Liveness that fails: the verdict is a lasso counterexample.
    starved = run_plan(protocol, eventually_done(), plan)
    print(f"[3] {eventually_done().name} ({starved.engine}): "
          f"{starved.outcome_label()} — "
          f"{starved.statistics.states_visited} states")

    cx = starved.counterexample
    print(f"\nlasso: {cx.cycle_start}-step stem + "
          f"{len(cx.cycle_steps)}-step cycle")
    states = cx.replay(protocol)
    for index, step in enumerate(cx.steps):
        marker = "  <- cycle starts here" if index == cx.cycle_start else ""
        rep = states[index + 1].local("rep1")
        print(f"  {index + 1:2d}. {step.execution.transition.name:<18}"
              f" rep1 {'up' if rep.up else 'down'}{marker}")
    print("\nThe cycle repeats CRASH/RECOVER forever; the writer never "
          "reaches phase='done'.")
    print("Replay confirms the cycle closes: "
          f"states[{len(cx.steps)}] == states[{cx.cycle_start}] is "
          f"{states[-1] == states[cx.cycle_start]}.")


if __name__ == "__main__":
    main()
