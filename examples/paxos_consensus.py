#!/usr/bin/env python3
"""Paxos: quorum transitions vs single-message transitions (Table I in miniature).

The script builds both models of Paxos (2,3,1) — the paper's Table I setting
— and compares the state-space size and verification time of:

* the single-message ("no quorum") model under static POR, and
* the quorum-transition model under static POR,

then repeats the comparison for the fault-injected variant to show how
quickly the consensus violation is found in each model.

Run with::

    python examples/paxos_consensus.py
"""

from __future__ import annotations

from repro import (
    ModelChecker,
    PaxosConfig,
    Strategy,
    build_faulty_paxos_quorum,
    build_faulty_paxos_single,
    build_paxos_quorum,
    build_paxos_single,
    consensus_invariant,
)
from repro.analysis import EvaluationTable, compare_results


def check(protocol, invariant, strategy=Strategy.SPOR_NET):
    return ModelChecker(protocol, invariant).run(strategy)


def main() -> None:
    config = PaxosConfig(proposers=2, acceptors=3, learners=1)
    invariant = consensus_invariant()

    print(f"Paxos {config.setting_label}: consensus under static POR")
    print("-" * 72)

    single_result = check(build_paxos_single(config), invariant)
    quorum_result = check(build_paxos_quorum(config), invariant)

    table = EvaluationTable(
        title=f"Paxos {config.setting_label} — consensus",
        columns=["No quorum (SPOR)", "Quorum (SPOR)"],
    )
    row = table.new_row(f"Paxos {config.setting_label}", "consensus", "Verified")
    row.add_result("No quorum (SPOR)", single_result)
    row.add_result("Quorum (SPOR)", quorum_result)
    print(table.render())
    print()
    comparison = compare_results(
        single_result, quorum_result,
        baseline_label="single-message model", improved_label="quorum model",
    )
    print(comparison.summary())
    print()

    print("Fast debugging: Faulty Paxos (learners do not compare proposals)")
    print("-" * 72)
    faulty_single = check(build_faulty_paxos_single(config), invariant)
    faulty_quorum = check(build_faulty_paxos_quorum(config), invariant)
    for label, result in (("single-message", faulty_single), ("quorum", faulty_quorum)):
        print(
            f"  {label:15s}: {result.outcome_label()} after "
            f"{result.statistics.states_visited} states "
            f"({result.statistics.elapsed_seconds:.2f}s), "
            f"counterexample length {result.counterexample.length}"
        )

    learned = faulty_quorum.counterexample.violating_state.local("learner1").learned
    print(f"\n  learned values in the violating state: {sorted(learned)}")


if __name__ == "__main__":
    main()
