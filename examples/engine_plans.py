#!/usr/bin/env python3
"""The composable engine API: plans, the registry, and the event stream.

A model-checking run is one point of a cross-product of orthogonal axes —
search shape × reduction × store × backend × workers — named by a
:class:`repro.CheckPlan`.  This example shows the three things the plan
layer gives you over the legacy ``Strategy`` enum:

1. **Declarative engine selection** — the registry resolves a plan to the
   engine supporting it (serial, frontier-parallel or work-stealing) and
   refuses unsupported combinations with a structured diagnostic naming the
   offending axis, instead of silently downgrading.
2. **One event stream** — every engine feeds the same observer API
   (progress ticks, level barriers, worker reports, violations), so tools
   consume one stream regardless of the backend.
3. **A migration path** — ``ModelChecker.run(Strategy.X)`` still works; it
   now builds the equivalent plan, so both APIs return identical results.

Run with::

    PYTHONPATH=src python examples/engine_plans.py

The same registry is available from the shell::

    PYTHONPATH=src python -m repro engines
    PYTHONPATH=src python -m repro check storage-3-1 --shape bfs --workers 4
"""

from __future__ import annotations

from repro import (
    CheckPlan,
    CollectingObserver,
    ModelChecker,
    Strategy,
    UnsupportedPlanError,
    default_registry,
    plan_for_strategy,
    run_plan,
)
from repro.protocols.catalog import multicast_entry


def list_engines() -> None:
    """Walk the registry: every engine declares what it supports."""
    print("registered engines:")
    for engine in default_registry().engines():
        caps = engine.capabilities
        print(f"  {engine.name:<14} shapes={'/'.join(caps.shapes)} "
              f"reductions={'/'.join(caps.reductions)} "
              f"{caps.supported_description('workers')}")
    print()


def resolve_some_plans() -> None:
    """Plan resolution picks the backend from the shape and worker count."""
    entry = multicast_entry(2, 1, 0, 1)
    for plan in (
        CheckPlan(reduction="spor"),                       # serial stubborn-set DFS
        CheckPlan(reduction="spor", workers=2),            # work-stealing DFS
        CheckPlan(shape="bfs", workers=2),                 # frontier-parallel BFS
        CheckPlan(reduction="dpor"),                       # stateless dynamic POR
    ):
        result = run_plan(entry.quorum_model(), entry.invariant, plan)
        print(f"  {plan.describe():<28} -> {result.engine:<14} "
              f"{result.outcome_label():<9} "
              f"{result.statistics.states_visited:,} states")
    print()


def watch_the_event_stream() -> None:
    """All engines feed one observer API; here we count the events."""
    entry = multicast_entry(2, 1, 0, 1)
    observer = CollectingObserver()
    run_plan(entry.quorum_model(), entry.invariant,
             CheckPlan(shape="bfs"), observer=observer)
    print(f"  serial BFS event stream: {observer.counts()}")
    print()


def unsupported_plans_fail_loudly() -> None:
    """No silent downgrades: the registry names the offending axis."""
    entry = multicast_entry(2, 1, 0, 1)
    try:
        run_plan(entry.quorum_model(), entry.invariant,
                 CheckPlan(reduction="dpor", workers=4))
    except UnsupportedPlanError as error:
        print(f"  rejected axis: {error.axis} = {error.value}")
        print(f"  nearest supported alternative: {error.alternative.describe()}")
    print()


def opt_into_the_fast_path() -> None:
    """The packed fast-path engines: same counts, smaller constant."""
    entry = multicast_entry(2, 1, 0, 1)
    slow = run_plan(entry.quorum_model(), entry.invariant, CheckPlan())
    fast = run_plan(entry.quorum_model(), entry.invariant,
                    CheckPlan(successors="fast"))
    assert fast.statistics.states_visited == slow.statistics.states_visited
    print(f"  {slow.engine}: {slow.statistics.states_visited} states in "
          f"{slow.statistics.elapsed_seconds * 1000:.1f}ms")
    print(f"  {fast.engine}: {fast.statistics.states_visited} states in "
          f"{fast.statistics.elapsed_seconds * 1000:.1f}ms (identical closure)")
    print()


def legacy_shim_agrees() -> None:
    """The Strategy enum is now a thin shim building the equivalent plan."""
    entry = multicast_entry(2, 1, 0, 1)
    legacy = ModelChecker(entry.quorum_model(), entry.invariant).run(Strategy.STUBBORN)
    plan = plan_for_strategy(Strategy.STUBBORN)
    direct = run_plan(entry.quorum_model(), entry.invariant, plan)
    assert legacy.statistics.states_visited == direct.statistics.states_visited
    assert legacy.engine == direct.engine
    print(f"  Strategy.STUBBORN == {plan.describe()} "
          f"({legacy.statistics.states_visited} states via {legacy.engine})")
    print()


if __name__ == "__main__":
    print("=" * 72)
    print("Composable engine API")
    print("=" * 72)
    list_engines()
    resolve_some_plans()
    watch_the_event_stream()
    unsupported_plans_fail_loudly()
    opt_into_the_fast_path()
    legacy_shim_agrees()
