#!/usr/bin/env python3
"""Quickstart: model check Paxos consensus with quorum transitions.

This example builds the smallest meaningful Paxos instance (one proposer,
three acceptors, one learner), checks the consensus invariant under the
static partial-order reduction, and then injects the paper's "Faulty Paxos"
bug to show how a counterexample is reported.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CheckPlan,
    ModelChecker,
    PaxosConfig,
    Strategy,
    build_faulty_paxos_quorum,
    build_paxos_quorum,
    consensus_invariant,
)


def verify_correct_paxos() -> None:
    """Exhaustively verify consensus for Paxos (1,3,1) and print statistics."""
    config = PaxosConfig(proposers=1, acceptors=3, learners=1)
    protocol = build_paxos_quorum(config)
    print(protocol.describe())
    print()

    # A run is a CheckPlan: search shape x reduction (x store x backend x
    # workers); the registry picks the engine.  ``ModelChecker.run(Strategy.X)``
    # remains available as a shim building the equivalent plan.
    for plan in (CheckPlan(), CheckPlan(reduction="spor-net")):
        result = ModelChecker(protocol, consensus_invariant()).run_plan(plan)
        print(
            f"  {result.strategy:10s}: {result.outcome_label():9s}"
            f"  {result.statistics.states_visited:6d} states"
            f"  {result.statistics.transitions_executed:6d} transitions"
            f"  {result.statistics.elapsed_seconds:6.2f}s  [{result.engine}]"
        )
    print()


def debug_faulty_paxos() -> None:
    """Find the consensus violation injected into the learners."""
    config = PaxosConfig(proposers=2, acceptors=3, learners=1)
    protocol = build_faulty_paxos_quorum(config)
    result = ModelChecker(protocol, consensus_invariant()).run(Strategy.SPOR_NET)

    print(f"faulty paxos {config.setting_label}: {result.outcome_label()} "
          f"after {result.statistics.states_visited} states")
    assert result.counterexample is not None
    print()
    print("shortest prefix of the violating schedule:")
    for index, name in enumerate(result.counterexample.transition_names(), start=1):
        print(f"  {index:2d}. {name}")
    learned = result.counterexample.violating_state.local("learner1").learned
    print(f"\nthe learner ends up believing two different values: {sorted(learned)}")


def main() -> None:
    print("=" * 72)
    print("Quickstart: Paxos under MP-Kit")
    print("=" * 72)
    verify_correct_paxos()
    debug_faulty_paxos()


if __name__ == "__main__":
    main()
