#!/usr/bin/env python3
"""Transition refinement: quorum-split and reply-split in action.

The script demonstrates the paper's Section III on a Paxos instance:

1. list which transitions each refinement strategy would split;
2. validate, by exhaustive enumeration, that the refined models generate the
   *same state graph* as the original (Definition 1 / Theorem 2);
3. compare the state counts explored by the static POR on the unsplit,
   reply-split, quorum-split and combined-split models (Table II in
   miniature).

Run with::

    python examples/transition_refinement.py
"""

from __future__ import annotations

from repro import (
    ModelChecker,
    PaxosConfig,
    Strategy,
    build_paxos_quorum,
    consensus_invariant,
)
from repro.refine import (
    combined_split,
    compare_state_graphs,
    describe_split_opportunities,
    quorum_split,
    reply_split,
)


def validate_equivalence(original) -> None:
    """Check Definition 1 by enumeration on a small instance."""
    small = build_paxos_quorum(PaxosConfig(1, 3, 1))
    print("state-graph equivalence (Theorem 2), Paxos (1,3,1):")
    for label, split in (("reply-split", reply_split),
                         ("quorum-split", quorum_split),
                         ("combined-split", combined_split)):
        report = compare_state_graphs(small, split(small), max_states=100_000)
        print(f"  {label:15s}: equivalent={report.equivalent} "
              f"({report.original_states} states, {report.original_edges} edges)")
    print()


def compare_reductions(original) -> None:
    """Table II in miniature: SPOR on the unsplit and refined models."""
    invariant = consensus_invariant()
    print(f"static POR on {original.name}:")
    rows = (
        ("unsplit", original),
        ("reply-split", reply_split(original)),
        ("quorum-split", quorum_split(original)),
        ("combined-split", combined_split(original)),
    )
    for label, protocol in rows:
        result = ModelChecker(protocol, invariant).run(Strategy.SPOR_NET)
        print(f"  {label:15s}: {result.statistics.states_visited:6d} states, "
              f"{len(protocol.transitions):3d} transitions in the model, "
              f"{result.statistics.elapsed_seconds:5.2f}s, "
              f"{result.outcome_label()}")
    print()


def main() -> None:
    original = build_paxos_quorum(PaxosConfig(2, 3, 1))
    print("=" * 72)
    print("Transition refinement on Paxos")
    print("=" * 72)
    print(describe_split_opportunities(original))
    print()
    validate_equivalence(original)
    compare_reductions(original)


if __name__ == "__main__":
    main()
