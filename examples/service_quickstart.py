#!/usr/bin/env python3
"""Checking as a service: jobs, budgets, honest partial verdicts, caching.

The service layer (:mod:`repro.service`) turns the plan-layer entry point
into a job server: submissions go through a bounded queue to a concurrent
worker pool, every job streams its own engine events, verdicts are
memoized in a cache that only ever admits *complete* results, and budget-
truncated runs come back as honest ``inconclusive`` verdicts — never as
"Verified".

Four steps, in-process (the same machinery serves TCP under
``python -m repro serve`` / ``python -m repro submit``):

1. Run a batch of jobs through :func:`repro.service.run_jobs`.
2. See a budget-truncated job report ``inconclusive`` with its statistics
   and telemetry intact.
3. Resubmit an identical job and watch it come back from the verdict
   cache without an engine re-run.
4. Drive the asyncio :class:`CheckService` directly: health probe,
   cache statistics, explicit invalidation.

Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import asyncio

from repro.service import (
    CheckService,
    JobBudgets,
    JobRequest,
    ResultCache,
    run_jobs,
)

CELL = "multicast-2-1-0-1"


def step_1_and_2_batch_with_budgets(cache: ResultCache) -> None:
    print("== 1+2: a batch with and without budgets")
    jobs = run_jobs(
        [
            JobRequest(cell=CELL),
            JobRequest(cell=CELL, budgets=JobBudgets(max_states=10)),
        ],
        workers=2,
        cache=cache,
    )
    for job in jobs:
        result = job.result
        print(
            f"  {job.id}: {result.outcome():<12} "
            f"({result.statistics.states_visited} states, "
            f"complete={result.complete}, "
            f"telemetry={'yes' if result.telemetry else 'no'})"
        )
    assert jobs[0].outcome() == "verified"
    # The truncated run saw no violation — but covering 10 of 45 states
    # proves nothing, and the service says so instead of "Verified".
    assert jobs[1].outcome() == "inconclusive"
    assert jobs[1].result.outcome_label() == "Inconclusive (budget hit)"


def step_3_cache_hit(cache: ResultCache) -> None:
    print("== 3: identical resubmission is a cache hit")
    (job,) = run_jobs([JobRequest(cell=CELL)], workers=1, cache=cache)
    print(f"  {job.id}: {job.outcome()} cache_hit={job.cache_hit}")
    print(f"  job stream: {', '.join(job.events.kinds())}")
    assert job.cache_hit
    assert "job-cache-hit" in job.events.kinds()
    assert "search-started" not in job.events.kinds()  # no engine ran
    # Only the complete run was admitted; the truncated one never is.
    stats = cache.stats()
    print(f"  cache: {stats['entries']} entries, "
          f"{stats['hits']} hits, {stats['rejected_incomplete']} "
          f"incomplete result(s) refused")
    assert stats["rejected_incomplete"] >= 1


def step_4_service_health() -> None:
    print("== 4: the asyncio service directly — health and invalidation")

    async def scenario() -> None:
        async with CheckService(workers=2, queue_limit=8) as service:
            await service.check(JobRequest(cell=CELL))
            cached = await service.check(JobRequest(cell=CELL))
            assert cached.cache_hit
            health = service.health()
            print(f"  status={health['status']} "
                  f"engine_runs={health['engine_runs']} "
                  f"jobs={health['jobs']}")
            removed = service.cache.clear()
            rerun = await service.check(JobRequest(cell=CELL))
            print(f"  invalidated {removed} entries -> "
                  f"rerun cache_hit={rerun.cache_hit}")
            assert not rerun.cache_hit

    asyncio.run(scenario())


def main() -> None:
    cache = ResultCache()
    step_1_and_2_batch_with_budgets(cache)
    step_3_cache_hit(cache)
    step_4_service_health()
    print("service quickstart OK")


if __name__ == "__main__":
    main()
