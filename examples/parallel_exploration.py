#!/usr/bin/env python3
"""Parallel exploration: sharded frontier-parallel BFS and cell-parallel sweeps.

This example demonstrates both parallel axes of :mod:`repro.parallel`:

1. one cell explored breadth-first by shard-owning workers, with the
   visited-state count checked against the serial search (they are exactly
   equal — parallelism changes who expands a state, never whether), and
2. a grid of independent Table-I cells farmed across a process pool.

Run with::

    PYTHONPATH=src python examples/parallel_exploration.py

The same experiments are available from the shell::

    PYTHONPATH=src python -m repro check storage-3-1 --strategy bfs --workers 4
    PYTHONPATH=src python -m repro sweep --cells all --workers 4
"""

from __future__ import annotations

import time

from repro import CellSpec, CheckPlan, run_cells, run_plan
from repro.protocols.catalog import storage_entry


def frontier_parallel_cell(workers: int = 4) -> None:
    """Explore one cell serially and with shard-owning workers.

    Both runs go through the plan layer: same shape, different worker
    count; the registry picks the serial vs frontier-parallel engine.
    """
    entry = storage_entry(3, 1)
    serial = run_plan(entry.quorum_model(), entry.invariant, CheckPlan(shape="bfs"))
    parallel = run_plan(
        entry.quorum_model(), entry.invariant,
        CheckPlan(shape="bfs", workers=workers),
    )
    print(f"{entry.description}: serial BFS visited "
          f"{serial.statistics.states_visited:,} states in "
          f"{serial.statistics.elapsed_seconds:.2f}s")
    print(f"{entry.description}: {workers}-worker BFS visited "
          f"{parallel.statistics.states_visited:,} states in "
          f"{parallel.statistics.elapsed_seconds:.2f}s")
    assert parallel.statistics.states_visited == serial.statistics.states_visited
    print("visited-state counts identical — the shard partition is exact\n")


def cell_parallel_sweep(workers: int = 4) -> None:
    """Sweep several independent cells through a process pool."""
    specs = [
        CellSpec(key="paxos-2-2-1"),
        CellSpec(key="multicast-3-0-1-1"),
        CellSpec(key="multicast-2-1-0-1"),
        CellSpec(key="storage-3-1"),
    ]
    started = time.perf_counter()
    serial_records = run_cells(specs, workers=1)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    pooled_records = run_cells(specs, workers=workers)
    pooled_wall = time.perf_counter() - started
    for record in pooled_records:
        outcome = "Verified" if record["verified"] else "CE"
        print(f"  {record['cell']:<22} {outcome:<9} "
              f"{record['states_visited']:,} states")
    print(f"serial loop: {serial_wall:.2f}s, {workers}-process pool: "
          f"{pooled_wall:.2f}s")
    assert [r["verified"] for r in serial_records] == [
        r["verified"] for r in pooled_records
    ]


if __name__ == "__main__":
    frontier_parallel_cell()
    cell_parallel_sweep()
