#!/usr/bin/env python3
"""Regular storage: a correct property and a deliberately wrong one.

The single-writer regular register over three crash-prone base objects is
checked against:

* **regularity** — a completed read returns either the initial value or the
  written value, and a read that started after the write completed returns
  the written value.  This holds and is verified exhaustively.
* **wrong regularity** — the deliberately too-strong specification from the
  paper's evaluation: a read that *completes* after the write completed must
  return the written value even when the two operations overlap.  The model
  checker refutes it and the counterexample shows the overlapping schedule.

Run with::

    python examples/storage_regularity.py
"""

from __future__ import annotations

from repro import (
    ModelChecker,
    StorageConfig,
    Strategy,
    build_storage_quorum,
    regularity_invariant,
    wrong_regularity_invariant,
)


def main() -> None:
    config = StorageConfig(base_objects=3, readers=1)
    protocol = build_storage_quorum(config)

    print(f"Regular storage {config.setting_label}: one writer, "
          f"{config.base_objects} base objects, {config.readers} reader")
    print("-" * 72)

    verified = ModelChecker(protocol, regularity_invariant()).run(Strategy.SPOR_NET)
    print(f"regularity:        {verified.outcome_label()} — "
          f"{verified.statistics.states_visited} states, "
          f"{verified.statistics.elapsed_seconds:.2f}s")

    refuted = ModelChecker(protocol, wrong_regularity_invariant()).run(Strategy.SPOR_NET)
    print(f"wrong regularity:  {refuted.outcome_label()} — "
          f"{refuted.statistics.states_visited} states, "
          f"{refuted.statistics.elapsed_seconds:.2f}s")
    print()

    counterexample = refuted.counterexample
    reader = counterexample.violating_state.local("reader1")
    writer = counterexample.violating_state.local("writer")
    print("why the stronger specification is wrong:")
    print(f"  the read overlapped the write, returned {reader.returned!r} "
          f"(the old value), and by the time it completed the write had "
          f"finished (writer phase = {writer.phase!r}).")
    print("  regularity allows this; the wrong specification does not.")
    print()
    print("overlapping schedule found by the model checker:")
    for index, name in enumerate(counterexample.transition_names(), start=1):
        print(f"  {index:2d}. {name}")


if __name__ == "__main__":
    main()
