#!/usr/bin/env python3
"""Echo Multicast under Byzantine attack.

Three scenarios from the paper's evaluation:

1. ``(3,0,1,1)`` — one equivocating Byzantine initiator and one Byzantine
   receiver against three honest receivers: within the fault threshold, so
   agreement is verified (the attacker cannot gather two echo quorums).
2. ``(2,1,0,1)`` — a Byzantine initiator but no Byzantine receiver: the echo
   quorum contains every receiver and agreement again holds.
3. ``(2,1,2,1)`` — two Byzantine receivers exceed the assumed threshold
   (the paper's "wrong agreement" setting): the model checker produces a
   counterexample in which two honest receivers deliver the attacker's two
   conflicting messages.

Run with::

    python examples/byzantine_multicast.py
"""

from __future__ import annotations

from repro import (
    ModelChecker,
    MulticastConfig,
    Strategy,
    agreement_invariant,
    build_multicast_quorum,
)


def run_setting(setting: MulticastConfig) -> None:
    protocol = build_multicast_quorum(setting)
    result = ModelChecker(protocol, agreement_invariant()).run(Strategy.SPOR_NET)

    threshold_note = "EXCEEDS assumed threshold" if setting.exceeds_threshold else "within threshold"
    print(f"Echo Multicast {setting.setting_label} "
          f"(echo quorum {setting.echo_quorum}, f={setting.assumed_faults}, {threshold_note})")
    print(f"  agreement: {result.outcome_label()} — "
          f"{result.statistics.states_visited} states, "
          f"{result.statistics.elapsed_seconds:.2f}s")

    if result.found_counterexample:
        final = result.counterexample.violating_state
        print("  deliveries of the honest receivers in the violating state:")
        for process in protocol.processes_of_type("receiver"):
            delivered = sorted(final.local(process.pid).delivered)
            print(f"    {process.pid}: {delivered}")
        print("  schedule that lets the attacker commit both messages:")
        for index, name in enumerate(result.counterexample.transition_names(), start=1):
            print(f"    {index:2d}. {name}")
    print()


def main() -> None:
    print("=" * 72)
    print("Echo Multicast: agreement despite (bounded) Byzantine faults")
    print("=" * 72)
    for setting in (
        MulticastConfig(3, 0, 1, 1),
        MulticastConfig(2, 1, 0, 1),
        MulticastConfig(2, 1, 2, 1),
    ):
        run_setting(setting)


if __name__ == "__main__":
    main()
